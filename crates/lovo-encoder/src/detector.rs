//! Simulated predefined-class detectors and attribute classifiers.
//!
//! The baseline systems the paper compares against (VOCAL, MIRIS, FiGO) are
//! built on conventional detection models trained on fixed label sets
//! (MSCOCO). This module provides their stand-ins:
//!
//! * [`SimulatedDetector`] — a YOLO-style detector that recognizes only the
//!   predefined labels ([`lovo_video::ObjectClass::coco_label`]), misses a
//!   configurable fraction of objects, jitters boxes, and occasionally emits
//!   false positives. Crucially, an `Suv` is reported as a plain `"car"` and
//!   attribute details (colour, relations) are invisible to it — the exact
//!   limitation that motivates LOVO (§II).
//! * [`AttributeClassifier`] — the auxiliary per-object classifier a QD-search
//!   system would train/apply for queries with novel attributes ("red car"):
//!   it predicts colour / size / activity with configurable accuracy, but has
//!   no notion of relations or open-vocabulary descriptions.
//!
//! Both carry a modeled per-frame inference cost so the evaluation harness can
//! report end-to-end latency shaped like the paper's testbed (our substitution
//! for running real GPU models; see DESIGN.md).

use lovo_tensor::init::rng_for;
use lovo_video::bbox::BoundingBox;
use lovo_video::object::{Activity, Color, Location, SizeClass};
use lovo_video::scene::{Frame, SceneObject};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One detection emitted by the simulated detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predefined-class label ("car", "bus", "person", ...).
    pub label: String,
    /// Predicted bounding box.
    pub bbox: BoundingBox,
    /// Detector confidence in `[0, 1]`.
    pub confidence: f32,
    /// Index of the ground-truth object this detection came from, if any
    /// (false positives have `None`). Only the simulation layer knows this;
    /// baselines never read it for decision making, only the evaluation does.
    pub source_object: Option<usize>,
}

/// Configuration of the simulated detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Probability of missing an object that is in the label set.
    pub miss_rate: f32,
    /// Expected number of false positives per frame.
    pub false_positives_per_frame: f32,
    /// Box jitter amplitude in pixels.
    pub box_noise: f32,
    /// Modeled inference cost per frame in milliseconds (used by the latency
    /// model; the simulation itself runs far faster).
    pub cost_per_frame_ms: f64,
    /// Seed for the detector's error process.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            miss_rate: 0.08,
            false_positives_per_frame: 0.05,
            box_noise: 6.0,
            cost_per_frame_ms: 25.0,
            seed: 0xdec0,
        }
    }
}

impl DetectorConfig {
    /// A faster, less accurate detector (FiGO's ensemble includes such tiers).
    pub fn fast() -> Self {
        Self {
            miss_rate: 0.2,
            false_positives_per_frame: 0.15,
            box_noise: 14.0,
            cost_per_frame_ms: 8.0,
            seed: 0xdec1,
        }
    }

    /// A slower, more accurate detector.
    pub fn accurate() -> Self {
        Self {
            miss_rate: 0.03,
            false_positives_per_frame: 0.02,
            box_noise: 3.0,
            cost_per_frame_ms: 60.0,
            seed: 0xdec2,
        }
    }
}

/// A simulated predefined-class (MSCOCO-style) detector.
#[derive(Debug, Clone)]
pub struct SimulatedDetector {
    config: DetectorConfig,
}

impl SimulatedDetector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        Self { config }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Modeled per-frame inference cost in milliseconds.
    pub fn cost_per_frame_ms(&self) -> f64 {
        self.config.cost_per_frame_ms
    }

    /// Runs detection on one frame.
    pub fn detect(&self, frame: &Frame) -> Vec<Detection> {
        let mut rng = rng_for(self.config.seed, &format!("det.frame.{}", frame.index));
        let mut detections = Vec::new();
        for (i, obj) in frame.objects.iter().enumerate() {
            let Some(label) = obj.attributes.class.coco_label() else {
                continue; // outside the predefined label set
            };
            if rng.gen_range(0.0f32..1.0) < self.config.miss_rate {
                continue; // missed detection
            }
            let n = self.config.box_noise;
            let bbox = BoundingBox::new(
                obj.bbox.x + rng.gen_range(-n..=n),
                obj.bbox.y + rng.gen_range(-n..=n),
                obj.bbox.w * rng.gen_range(0.92f32..1.08),
                obj.bbox.h * rng.gen_range(0.92f32..1.08),
            )
            .clamped(frame.width as f32, frame.height as f32);
            let confidence = (0.95 - self.config.miss_rate * 0.5 + rng.gen_range(-0.1f32..0.05))
                .clamp(0.05, 0.99);
            detections.push(Detection {
                label: label.to_string(),
                bbox,
                confidence,
                source_object: Some(i),
            });
        }
        // False positives: phantom boxes with a random predefined label.
        if rng.gen_range(0.0f32..1.0) < self.config.false_positives_per_frame {
            let labels = ["car", "person", "truck", "bus"];
            let label = labels[rng.gen_range(0..labels.len())];
            let w = rng.gen_range(40.0f32..200.0);
            let h = rng.gen_range(40.0f32..150.0);
            detections.push(Detection {
                label: label.to_string(),
                bbox: BoundingBox::new(
                    rng.gen_range(0.0..(frame.width as f32 - w).max(1.0)),
                    rng.gen_range(0.0..(frame.height as f32 - h).max(1.0)),
                    w,
                    h,
                )
                .clamped(frame.width as f32, frame.height as f32),
                confidence: rng.gen_range(0.2f32..0.5),
                source_object: None,
            });
        }
        detections
    }
}

/// Attributes predicted by the QD-search auxiliary classifier for one object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictedAttributes {
    /// Predicted colour.
    pub color: Color,
    /// Predicted size.
    pub size: SizeClass,
    /// Predicted activity.
    pub activity: Activity,
    /// Predicted location.
    pub location: Location,
}

/// Simulated attribute classifier applied on top of detections by QD-search
/// baselines (their "specialized models").
#[derive(Debug, Clone)]
pub struct AttributeClassifier {
    /// Probability that each predicted facet equals the ground truth.
    pub accuracy: f32,
    /// Modeled cost per classified object in milliseconds.
    pub cost_per_object_ms: f64,
    /// Seed of the error process.
    pub seed: u64,
}

impl Default for AttributeClassifier {
    fn default() -> Self {
        Self {
            accuracy: 0.85,
            cost_per_object_ms: 6.0,
            seed: 0xc1a5,
        }
    }
}

impl AttributeClassifier {
    /// Predicts the facet attributes of a detected object. With probability
    /// `1 - accuracy` per facet, a different value is returned.
    pub fn classify(
        &self,
        frame_index: usize,
        object_index: usize,
        object: &SceneObject,
    ) -> PredictedAttributes {
        let mut rng = rng_for(self.seed, &format!("attr.{frame_index}.{object_index}"));
        let truth = &object.attributes;
        let flip = |rng: &mut rand::rngs::SmallRng| rng.gen_range(0.0f32..1.0) > self.accuracy;
        let color = if flip(&mut rng) {
            Color::ALL[rng.gen_range(0..Color::ALL.len())]
        } else {
            truth.color
        };
        let size = if flip(&mut rng) {
            SizeClass::ALL[rng.gen_range(0..SizeClass::ALL.len())]
        } else {
            truth.size
        };
        let activity = if flip(&mut rng) {
            Activity::ALL[rng.gen_range(0..Activity::ALL.len())]
        } else {
            truth.activity
        };
        let location = if flip(&mut rng) {
            Location::ALL[rng.gen_range(0..Location::ALL.len())]
        } else {
            truth.location
        };
        PredictedAttributes {
            color,
            size,
            activity,
            location,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::object::{ObjectAttributes, ObjectClass};
    use lovo_video::scene::TrackId;

    fn frame_with_objects(classes: &[ObjectClass]) -> Frame {
        let mut f = Frame::empty(0, 0.0, 1280, 720);
        for (i, &class) in classes.iter().enumerate() {
            f.objects.push(SceneObject {
                track: TrackId(i as u64),
                attributes: ObjectAttributes::simple(class).with_color(Color::Red),
                bbox: BoundingBox::new(100.0 + i as f32 * 200.0, 200.0, 150.0, 90.0),
                velocity: (0.0, 0.0),
            });
        }
        f
    }

    #[test]
    fn detects_predefined_classes_only() {
        let det = SimulatedDetector::new(DetectorConfig {
            miss_rate: 0.0,
            false_positives_per_frame: 0.0,
            ..DetectorConfig::default()
        });
        let frame = frame_with_objects(&[
            ObjectClass::Car,
            ObjectClass::Suv,
            ObjectClass::StreetFurniture,
        ]);
        let detections = det.detect(&frame);
        assert_eq!(detections.len(), 2, "street furniture must not be detected");
        assert!(detections.iter().all(|d| d.label == "car"));
    }

    #[test]
    fn suv_reported_as_car() {
        let det = SimulatedDetector::new(DetectorConfig {
            miss_rate: 0.0,
            false_positives_per_frame: 0.0,
            ..DetectorConfig::default()
        });
        let frame = frame_with_objects(&[ObjectClass::Suv]);
        let detections = det.detect(&frame);
        assert_eq!(detections[0].label, "car");
    }

    #[test]
    fn boxes_are_close_to_ground_truth() {
        let det = SimulatedDetector::new(DetectorConfig::default());
        let frame = frame_with_objects(&[ObjectClass::Bus, ObjectClass::Person]);
        for d in det.detect(&frame) {
            if let Some(src) = d.source_object {
                assert!(d.bbox.iou(&frame.objects[src].bbox) > 0.5);
            }
        }
    }

    #[test]
    fn miss_rate_reduces_detections() {
        let eager = SimulatedDetector::new(DetectorConfig {
            miss_rate: 0.0,
            false_positives_per_frame: 0.0,
            ..DetectorConfig::default()
        });
        let lossy = SimulatedDetector::new(DetectorConfig {
            miss_rate: 0.9,
            false_positives_per_frame: 0.0,
            ..DetectorConfig::default()
        });
        let mut eager_total = 0usize;
        let mut lossy_total = 0usize;
        for i in 0..50 {
            let mut frame = frame_with_objects(&[ObjectClass::Car, ObjectClass::Person]);
            frame.index = i;
            eager_total += eager.detect(&frame).len();
            lossy_total += lossy.detect(&frame).len();
        }
        assert!(lossy_total < eager_total / 2);
    }

    #[test]
    fn detection_is_deterministic_per_frame() {
        let det = SimulatedDetector::new(DetectorConfig::default());
        let frame = frame_with_objects(&[ObjectClass::Car]);
        assert_eq!(det.detect(&frame), det.detect(&frame));
    }

    #[test]
    fn detector_tiers_trade_cost_for_accuracy() {
        let fast = DetectorConfig::fast();
        let accurate = DetectorConfig::accurate();
        assert!(fast.cost_per_frame_ms < accurate.cost_per_frame_ms);
        assert!(fast.miss_rate > accurate.miss_rate);
    }

    #[test]
    fn attribute_classifier_is_mostly_right() {
        let clf = AttributeClassifier {
            accuracy: 0.9,
            ..Default::default()
        };
        let frame = frame_with_objects(&[ObjectClass::Car; 1]);
        let mut correct = 0;
        let trials = 200;
        for i in 0..trials {
            let predicted = clf.classify(i, 0, &frame.objects[0]);
            if predicted.color == Color::Red {
                correct += 1;
            }
        }
        let rate = correct as f32 / trials as f32;
        assert!(rate > 0.8, "colour accuracy {rate}");
        // With accuracy 0 the classifier should often be wrong.
        let broken = AttributeClassifier {
            accuracy: 0.0,
            ..Default::default()
        };
        let mut wrong = 0;
        for i in 0..trials {
            if broken.classify(i, 0, &frame.objects[0]).color != Color::Red {
                wrong += 1;
            }
        }
        assert!(wrong > trials / 2);
    }
}
