//! # lovo-tensor
//!
//! Minimal dense linear-algebra and neural-network building blocks used by the
//! LOVO encoders (`lovo-encoder`). The crate intentionally implements only
//! what the paper's model components need:
//!
//! * a row-major [`Matrix`] type with the usual matrix/vector operations,
//! * numerically careful activation and normalization ops ([`ops`]),
//! * [`Linear`] layers, [`Mlp`] blocks, [`LayerNorm`],
//! * multi-head self- and cross-attention ([`attention`]),
//! * deterministic weight initialization ([`init`]) so that every experiment
//!   is reproducible bit-for-bit across runs.
//!
//! Everything is `f32`, single-threaded, and allocation-conscious; the encoder
//! workloads in this reproduction are small enough (embedding dims 64–768,
//! token counts ≤ a few hundred) that a cache-friendly naive matmul is
//! sufficient and keeps the substrate dependency-free.

pub mod attention;
pub mod init;
pub mod matrix;
pub mod nn;
pub mod ops;

pub use attention::MultiHeadAttention;
pub use matrix::Matrix;
pub use nn::{LayerNorm, Linear, Mlp};

/// Error type for shape mismatches and invalid arguments in tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes. The message explains the operation.
    ShapeMismatch(String),
    /// An argument was invalid (e.g. zero dimension, non-divisible head count).
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
