//! Numeric operations shared by the encoders: activations, normalization,
//! similarity metrics, and small vector helpers.
//!
//! The similarity functions here mirror §V-A of the paper: all embeddings are
//! L2-normalized so the dot product equals cosine similarity, and Euclidean
//! distance relates to similarity by `d = sqrt(2 - 2 * sim)`.

use crate::Matrix;

/// Numerically stable softmax over a slice, in place.
///
/// Subtracts the maximum before exponentiating so large logits do not overflow.
/// An empty slice is left untouched.
pub fn softmax_inplace(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in values.iter_mut() {
            *v /= sum;
        }
    } else {
        // All inputs were -inf; fall back to a uniform distribution.
        let uniform = 1.0 / values.len() as f32;
        for v in values.iter_mut() {
            *v = uniform;
        }
    }
}

/// Softmax applied independently to every row of a matrix.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    if cols == 0 {
        return;
    }
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        softmax_inplace(row);
    }
}

/// Gaussian Error Linear Unit, the activation used inside transformer MLPs.
///
/// Uses the tanh approximation which is accurate to ~1e-3 and branch-free.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// L2 norm of a vector.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Normalizes a vector to unit L2 norm in place.
///
/// A zero vector is left unchanged (there is no direction to preserve).
pub fn l2_normalize(v: &mut [f32]) {
    let norm = l2_norm(v);
    if norm > f32::EPSILON {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Dot product of two equal-length vectors.
///
/// Panics in debug builds if lengths differ; in release the shorter length wins,
/// matching `zip` semantics. Callers in this workspace always pass embeddings
/// of the configured dimension.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Cosine similarity between two vectors (0.0 if either is a zero vector).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        return 0.0;
    }
    dot(a, b) / (na * nb)
}

/// Squared Euclidean distance between two vectors.
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "squared_euclidean: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two vectors.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    squared_euclidean(a, b).sqrt()
}

/// Converts a cosine similarity between unit vectors into the Euclidean
/// distance between them: `d = sqrt(2 - 2 s)` (§V-A).
#[inline]
pub fn similarity_to_distance(sim: f32) -> f32 {
    (2.0 - 2.0 * sim).max(0.0).sqrt()
}

/// Converts a Euclidean distance between unit vectors into cosine similarity.
#[inline]
pub fn distance_to_similarity(dist: f32) -> f32 {
    1.0 - 0.5 * dist * dist
}

/// Mean of a slice (0.0 for an empty slice).
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

/// Population variance of a slice (0.0 for an empty slice).
pub fn variance(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / values.len() as f32
}

/// Returns the indices of the `k` largest values in descending order.
///
/// Ties are broken by the lower index to keep results deterministic.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut v = vec![1000.0, 1000.0, 1000.0];
        softmax_inplace(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v.iter().all(|&x| (x - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn softmax_orders_preserved() {
        let mut v = vec![1.0, 3.0, 2.0];
        softmax_inplace(&mut v);
        assert!(v[1] > v[2] && v[2] > v[0]);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_inplace(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn softmax_rows_normalizes_each_row() {
        let mut m = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, 5.0, 5.0, 5.0]).unwrap();
        softmax_rows(&mut m);
        for r in 0..2 {
            assert!((m.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn l2_normalize_gives_unit_norm() {
        let mut v = vec![3.0, 4.0];
        l2_normalize(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_zero_vector_untouched() {
        let mut v = vec![0.0, 0.0];
        l2_normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine_similarity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn similarity_distance_roundtrip_for_unit_vectors() {
        for &s in &[1.0f32, 0.5, 0.0, -0.5, -1.0] {
            let d = similarity_to_distance(s);
            assert!((distance_to_similarity(d) - s).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_and_euclidean_consistent_with_unit_vectors() {
        let mut a = vec![0.3, -0.8, 0.5];
        let mut b = vec![-0.1, 0.9, 0.4];
        l2_normalize(&mut a);
        l2_normalize(&mut b);
        let sim = dot(&a, &b);
        let dist = euclidean(&a, &b);
        assert!((similarity_to_distance(sim) - dist).abs() < 1e-5);
    }

    #[test]
    fn top_k_indices_descending_with_tie_break() {
        let v = vec![0.1, 0.9, 0.9, 0.2];
        assert_eq!(top_k_indices(&v, 3), vec![1, 2, 3]);
        assert_eq!(top_k_indices(&v, 10).len(), 4);
    }

    #[test]
    fn mean_and_variance() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < 1e-6);
        assert!((variance(&v) - 1.25).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }
}
