//! Neural-network layers: linear projections, layer normalization, and the
//! two-layer GELU MLP block used by the transformer encoders.

use crate::init::{rng_for, uniform_vector, xavier_uniform};
use crate::ops::{gelu, mean, variance};
use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense affine layer `y = x W^T + b` applied row-wise to a token matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix of shape `(out_features, in_features)`.
    weight: Matrix,
    /// Bias of length `out_features`.
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights, deterministically derived
    /// from `(seed, label)`.
    pub fn new(in_features: usize, out_features: usize, seed: u64, label: &str) -> Self {
        let mut rng = rng_for(seed, label);
        let weight = xavier_uniform(&mut rng, out_features, in_features);
        let bias = uniform_vector(&mut rng, out_features, 0.01);
        Self { weight, bias }
    }

    /// Creates a layer from explicit parameters (used by tests and the
    /// attribute-grounded encoder which builds structured projections).
    pub fn from_parts(weight: Matrix, bias: Vec<f32>) -> Result<Self> {
        if weight.rows() != bias.len() {
            return Err(TensorError::ShapeMismatch(format!(
                "Linear::from_parts: {} output rows vs bias of {}",
                weight.rows(),
                bias.len()
            )));
        }
        Ok(Self { weight, bias })
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.weight.cols()
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.weight.rows()
    }

    /// Applies the layer to a `(tokens, in_features)` matrix, producing
    /// `(tokens, out_features)`.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix> {
        if input.cols() != self.in_features() {
            return Err(TensorError::ShapeMismatch(format!(
                "Linear::forward: input has {} features, layer expects {}",
                input.cols(),
                self.in_features()
            )));
        }
        let projected = input.matmul_transposed(&self.weight)?;
        projected.add_row_broadcast(&self.bias)
    }

    /// Applies the layer to a single vector.
    pub fn forward_vec(&self, input: &[f32]) -> Result<Vec<f32>> {
        let m = Matrix::row_vector(input);
        Ok(self.forward(&m)?.into_vec())
    }
}

/// Layer normalization over the feature dimension of each token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
}

impl LayerNorm {
    /// Creates an identity-initialized layer norm (`gamma = 1`, `beta = 0`).
    pub fn new(features: usize) -> Self {
        Self {
            gamma: vec![1.0; features],
            beta: vec![0.0; features],
            eps: 1e-5,
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.gamma.len()
    }

    /// Normalizes each row of `input` to zero mean / unit variance and applies
    /// the learned scale and shift.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix> {
        if input.cols() != self.gamma.len() {
            return Err(TensorError::ShapeMismatch(format!(
                "LayerNorm::forward: input has {} features, layer expects {}",
                input.cols(),
                self.gamma.len()
            )));
        }
        let mut out = input.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let m = mean(row);
            let v = variance(row);
            let denom = (v + self.eps).sqrt();
            for (i, x) in row.iter_mut().enumerate() {
                *x = (*x - m) / denom * self.gamma[i] + self.beta[i];
            }
        }
        Ok(out)
    }
}

/// The standard transformer MLP block: `Linear -> GELU -> Linear`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Creates an MLP with the given hidden expansion, deterministically
    /// initialized from `(seed, label)`.
    pub fn new(features: usize, hidden: usize, out: usize, seed: u64, label: &str) -> Self {
        Self {
            fc1: Linear::new(features, hidden, seed, &format!("{label}.fc1")),
            fc2: Linear::new(hidden, out, seed, &format!("{label}.fc2")),
        }
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.fc1.in_features()
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.fc2.out_features()
    }

    /// Applies the block row-wise.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix> {
        let hidden = self.fc1.forward(input)?.map(gelu);
        self.fc2.forward(&hidden)
    }

    /// Applies the block to a single vector.
    pub fn forward_vec(&self, input: &[f32]) -> Result<Vec<f32>> {
        let m = Matrix::row_vector(input);
        Ok(self.forward(&m)?.into_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_determinism() {
        let l1 = Linear::new(8, 4, 11, "test");
        let l2 = Linear::new(8, 4, 11, "test");
        let input = Matrix::full(3, 8, 0.5);
        let a = l1.forward(&input).unwrap();
        let b = l2.forward(&input).unwrap();
        assert_eq!(a.shape(), (3, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn linear_rejects_wrong_input_width() {
        let l = Linear::new(8, 4, 0, "test");
        assert!(l.forward(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn linear_from_parts_validates_bias() {
        let w = Matrix::zeros(3, 2);
        assert!(Linear::from_parts(w.clone(), vec![0.0; 2]).is_err());
        assert!(Linear::from_parts(w, vec![0.0; 3]).is_ok());
    }

    #[test]
    fn linear_identity_weights_pass_through() {
        let l = Linear::from_parts(Matrix::identity(3), vec![1.0, 2.0, 3.0]).unwrap();
        let out = l.forward_vec(&[10.0, 20.0, 30.0]).unwrap();
        assert_eq!(out, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_variance() {
        let ln = LayerNorm::new(4);
        let m = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = ln.forward(&m).unwrap();
        let row = out.row(0);
        assert!(mean(row).abs() < 1e-5);
        assert!((variance(row) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_rejects_wrong_width() {
        let ln = LayerNorm::new(4);
        assert!(ln.forward(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn mlp_shapes() {
        let mlp = Mlp::new(16, 32, 8, 5, "mlp");
        let out = mlp.forward(&Matrix::full(4, 16, 0.1)).unwrap();
        assert_eq!(out.shape(), (4, 8));
        assert_eq!(mlp.in_features(), 16);
        assert_eq!(mlp.out_features(), 8);
    }

    #[test]
    fn mlp_is_nonlinear() {
        // f(2x) should differ from 2 f(x) for a GELU MLP with nonzero input.
        let mlp = Mlp::new(4, 8, 4, 1, "nl");
        let x = vec![0.5, -0.3, 0.8, 0.1];
        let fx = mlp.forward_vec(&x).unwrap();
        let x2: Vec<f32> = x.iter().map(|v| v * 2.0).collect();
        let fx2 = mlp.forward_vec(&x2).unwrap();
        let linear_prediction: Vec<f32> = fx.iter().map(|v| v * 2.0).collect();
        let diff: f32 = fx2
            .iter()
            .zip(linear_prediction.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "MLP behaved linearly, diff={diff}");
    }
}
