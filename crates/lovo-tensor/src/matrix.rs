//! Row-major dense `f32` matrix used by every encoder in the workspace.
//!
//! The matrix is deliberately simple: a `Vec<f32>` plus `(rows, cols)`. All
//! binary operations validate shapes and return [`TensorError`] rather than
//! panicking, so encoder configuration mistakes surface as recoverable errors.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch(format!(
                "from_vec: buffer of {} elements cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix from row slices. All rows must share the same length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(TensorError::ShapeMismatch(format!(
                    "from_rows: row {i} has {} columns, expected {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a single-row matrix from a slice (a row vector).
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the underlying data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the underlying data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Borrow a row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        debug_assert!(row < self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutably borrow a row as a slice.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        debug_assert!(row < self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Matrix multiplication `self * other`.
    ///
    /// Uses an ikj loop order so the innermost loop walks both operand rows
    /// contiguously, which is the cache-friendly layout for row-major storage.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix multiplication with the transpose of `other`: `self * other^T`.
    ///
    /// This is the common shape in attention (`Q * K^T`) and avoids
    /// materializing the transpose.
    pub fn matmul_transposed(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch(format!(
                "matmul_transposed: {}x{} * ({}x{})^T",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        Ok(out)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(&self, other: &Matrix, op: &str, f: impl Fn(f32, f32) -> f32) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch(format!(
                "{op}: {}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds `row` to every row of the matrix (broadcast add, used for biases).
    pub fn add_row_broadcast(&self, row: &[f32]) -> Result<Matrix> {
        if row.len() != self.cols {
            return Err(TensorError::ShapeMismatch(format!(
                "add_row_broadcast: row of {} vs {} columns",
                row.len(),
                self.cols
            )));
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(row.iter()) {
                *v += b;
            }
        }
        Ok(out)
    }

    /// Multiplies every element by `scalar`, in place, returning `self` for chaining.
    pub fn scale(mut self, scalar: f32) -> Matrix {
        for v in &mut self.data {
            *v *= scalar;
        }
        self
    }

    /// Applies `f` element-wise, in place, returning the mapped matrix.
    pub fn map(mut self, f: impl Fn(f32) -> f32) -> Matrix {
        for v in &mut self.data {
            *v = f(*v);
        }
        self
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Mean of all elements (0.0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Stacks matrices vertically (all must share the column count).
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix> {
        if parts.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = parts[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for (i, p) in parts.iter().enumerate() {
            if p.cols != cols {
                return Err(TensorError::ShapeMismatch(format!(
                    "vstack: part {i} has {} columns, expected {cols}",
                    p.cols
                )));
            }
            rows += p.rows;
            data.extend_from_slice(&p.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Returns a copy of the given contiguous column range as a new matrix.
    pub fn columns(&self, start: usize, end: usize) -> Result<Matrix> {
        if start > end || end > self.cols {
            return Err(TensorError::InvalidArgument(format!(
                "columns: range {start}..{end} out of 0..{}",
                self.cols
            )));
        }
        let width = end - start;
        let mut out = Matrix::zeros(self.rows, width);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(TensorError::ShapeMismatch(_))));
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(4, 3, (0..12).map(|v| v as f32).collect()).unwrap();
        let direct = a.matmul_transposed(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert_eq!(direct, explicit);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
    }

    #[test]
    fn broadcast_bias_add() {
        let a = Matrix::zeros(2, 3);
        let out = a.add_row_broadcast(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_validates_lengths() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn columns_slices_range() {
        let a = Matrix::from_vec(2, 4, (0..8).map(|v| v as f32).collect()).unwrap();
        let c = a.columns(1, 3).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(0), &[1.0, 2.0]);
        assert_eq!(c.row(1), &[5.0, 6.0]);
    }

    #[test]
    fn frobenius_norm_and_mean() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((a.mean() - 3.5).abs() < 1e-6);
    }
}
