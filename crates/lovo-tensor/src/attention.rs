//! Multi-head scaled dot-product attention.
//!
//! The same module implements self-attention (queries, keys and values all
//! derived from one token matrix) and cross-attention (queries from one
//! modality, keys/values from the other), which is exactly the layer structure
//! the paper's feature enhancer and cross-modality decoder use (§VI-B):
//! image-to-text attention uses `Q_image, K_text, V_text`; text-to-image
//! attention swaps the roles.

use crate::nn::Linear;
use crate::ops::softmax_rows;
use crate::{Matrix, Result, TensorError};
use serde::{Deserialize, Serialize};

/// Multi-head scaled dot-product attention with separate Q/K/V/O projections.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    num_heads: usize,
    head_dim: usize,
    q_proj: Linear,
    k_proj: Linear,
    v_proj: Linear,
    out_proj: Linear,
}

impl MultiHeadAttention {
    /// Creates an attention block over `model_dim`-wide tokens with
    /// `num_heads` heads. `model_dim` must be divisible by `num_heads`.
    pub fn new(model_dim: usize, num_heads: usize, seed: u64, label: &str) -> Result<Self> {
        if num_heads == 0 || model_dim == 0 {
            return Err(TensorError::InvalidArgument(
                "attention dimensions must be non-zero".to_string(),
            ));
        }
        if model_dim % num_heads != 0 {
            return Err(TensorError::InvalidArgument(format!(
                "model_dim {model_dim} not divisible by num_heads {num_heads}"
            )));
        }
        Ok(Self {
            num_heads,
            head_dim: model_dim / num_heads,
            q_proj: Linear::new(model_dim, model_dim, seed, &format!("{label}.q")),
            k_proj: Linear::new(model_dim, model_dim, seed, &format!("{label}.k")),
            v_proj: Linear::new(model_dim, model_dim, seed, &format!("{label}.v")),
            out_proj: Linear::new(model_dim, model_dim, seed, &format!("{label}.o")),
        })
    }

    /// Model (token embedding) dimension.
    pub fn model_dim(&self) -> usize {
        self.num_heads * self.head_dim
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Self-attention: queries, keys and values all come from `tokens`.
    pub fn self_attention(&self, tokens: &Matrix) -> Result<Matrix> {
        self.cross_attention(tokens, tokens)
    }

    /// Cross-attention: queries come from `queries`, keys and values from
    /// `context`. Output has one row per query token.
    pub fn cross_attention(&self, queries: &Matrix, context: &Matrix) -> Result<Matrix> {
        let model_dim = self.model_dim();
        if queries.cols() != model_dim || context.cols() != model_dim {
            return Err(TensorError::ShapeMismatch(format!(
                "cross_attention: queries {}x{}, context {}x{}, model_dim {model_dim}",
                queries.rows(),
                queries.cols(),
                context.rows(),
                context.cols()
            )));
        }
        if queries.rows() == 0 || context.rows() == 0 {
            return Ok(Matrix::zeros(queries.rows(), model_dim));
        }

        let q = self.q_proj.forward(queries)?;
        let k = self.k_proj.forward(context)?;
        let v = self.v_proj.forward(context)?;

        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut concat = Matrix::zeros(queries.rows(), model_dim);

        for head in 0..self.num_heads {
            let start = head * self.head_dim;
            let end = start + self.head_dim;
            let qh = q.columns(start, end)?;
            let kh = k.columns(start, end)?;
            let vh = v.columns(start, end)?;

            // scores[i][j] = (q_i . k_j) / sqrt(d_head)
            let mut scores = qh.matmul_transposed(&kh)?.scale(scale);
            softmax_rows(&mut scores);
            let head_out = scores.matmul(&vh)?;

            for r in 0..concat.rows() {
                concat.row_mut(r)[start..end].copy_from_slice(head_out.row(r));
            }
        }

        self.out_proj.forward(&concat)
    }

    /// Returns the attention weights (after softmax) between `queries` and
    /// `context`, averaged over heads. Shape `(num_queries, num_context)`.
    ///
    /// The rerank stage uses this to expose which image patch the query text
    /// attends to, which in turn drives box selection.
    pub fn attention_weights(&self, queries: &Matrix, context: &Matrix) -> Result<Matrix> {
        let model_dim = self.model_dim();
        if queries.cols() != model_dim || context.cols() != model_dim {
            return Err(TensorError::ShapeMismatch(format!(
                "attention_weights: queries {}x{}, context {}x{}, model_dim {model_dim}",
                queries.rows(),
                queries.cols(),
                context.rows(),
                context.cols()
            )));
        }
        let q = self.q_proj.forward(queries)?;
        let k = self.k_proj.forward(context)?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut avg = Matrix::zeros(queries.rows(), context.rows());
        for head in 0..self.num_heads {
            let start = head * self.head_dim;
            let end = start + self.head_dim;
            let qh = q.columns(start, end)?;
            let kh = k.columns(start, end)?;
            let mut scores = qh.matmul_transposed(&kh)?.scale(scale);
            softmax_rows(&mut scores);
            avg = avg.add(&scores)?;
        }
        Ok(avg.scale(1.0 / self.num_heads as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_indivisible_heads() {
        assert!(MultiHeadAttention::new(10, 3, 0, "a").is_err());
        assert!(MultiHeadAttention::new(0, 1, 0, "a").is_err());
        assert!(MultiHeadAttention::new(12, 3, 0, "a").is_ok());
    }

    #[test]
    fn self_attention_preserves_shape() {
        let attn = MultiHeadAttention::new(16, 4, 7, "enc").unwrap();
        let tokens = Matrix::full(5, 16, 0.3);
        let out = attn.self_attention(&tokens).unwrap();
        assert_eq!(out.shape(), (5, 16));
    }

    #[test]
    fn cross_attention_output_rows_follow_queries() {
        let attn = MultiHeadAttention::new(8, 2, 7, "x").unwrap();
        let q = Matrix::full(3, 8, 0.1);
        let ctx = Matrix::full(6, 8, 0.2);
        let out = attn.cross_attention(&q, &ctx).unwrap();
        assert_eq!(out.shape(), (3, 8));
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let attn = MultiHeadAttention::new(8, 2, 7, "x").unwrap();
        let q = Matrix::zeros(0, 8);
        let ctx = Matrix::full(4, 8, 0.2);
        let out = attn.cross_attention(&q, &ctx).unwrap();
        assert_eq!(out.shape(), (0, 8));
    }

    #[test]
    fn attention_weights_are_row_stochastic() {
        let attn = MultiHeadAttention::new(8, 2, 3, "w").unwrap();
        let q = Matrix::from_vec(2, 8, (0..16).map(|v| v as f32 * 0.1).collect()).unwrap();
        let ctx = Matrix::from_vec(4, 8, (0..32).map(|v| (v % 7) as f32 * 0.2).collect()).unwrap();
        let w = attn.attention_weights(&q, &ctx).unwrap();
        assert_eq!(w.shape(), (2, 4));
        for r in 0..2 {
            let sum: f32 = w.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn identical_tokens_attend_uniformly() {
        let attn = MultiHeadAttention::new(8, 2, 3, "u").unwrap();
        let ctx = Matrix::full(5, 8, 0.4);
        let q = Matrix::full(1, 8, 0.4);
        let w = attn.attention_weights(&q, &ctx).unwrap();
        for j in 0..5 {
            assert!((w.get(0, j) - 0.2).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_mismatch_is_error() {
        let attn = MultiHeadAttention::new(8, 2, 3, "e").unwrap();
        let q = Matrix::zeros(2, 6);
        let ctx = Matrix::zeros(3, 8);
        assert!(attn.cross_attention(&q, &ctx).is_err());
    }
}
