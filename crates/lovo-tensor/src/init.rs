//! Deterministic weight initialization.
//!
//! Every model in the reproduction is initialized from an explicit seed so a
//! given experiment configuration always produces the same embeddings, the
//! same index contents, and therefore the same accuracy numbers. The
//! generators below use `rand::rngs::SmallRng` seeded from a user seed mixed
//! with a per-layer label hash, so adding a layer never perturbs the weights
//! of existing layers.

use crate::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mixes a base seed with a layer label into a 64-bit seed.
///
/// Uses the FNV-1a hash of the label so that layer names, not construction
/// order, determine each layer's stream of random weights.
pub fn seed_for(base_seed: u64, label: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix-style avalanche of the combination keeps nearby seeds apart.
    let mut z = base_seed ^ hash;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG for the given seed and label.
pub fn rng_for(base_seed: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(seed_for(base_seed, label))
}

/// Samples a matrix with entries uniform in `[-limit, limit]`.
pub fn uniform_matrix(rng: &mut SmallRng, rows: usize, cols: usize, limit: f32) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("uniform_matrix: shape matches generated buffer")
}

/// Xavier/Glorot uniform initialization for a `rows x cols` weight matrix.
///
/// The limit is `sqrt(6 / (fan_in + fan_out))`, the standard choice for
/// tanh/GELU transformer layers.
pub fn xavier_uniform(rng: &mut SmallRng, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform_matrix(rng, rows, cols, limit)
}

/// Samples a matrix with approximately standard-normal entries scaled by `std`.
///
/// Uses the sum-of-uniforms (Irwin–Hall) approximation which is plenty for
/// weight init and avoids a Box–Muller dependency on `rand_distr`.
pub fn normal_matrix(rng: &mut SmallRng, rows: usize, cols: usize, std: f32) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum::<f32>() - 6.0;
            s * std
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("normal_matrix: shape matches generated buffer")
}

/// Samples a bias vector with entries uniform in `[-limit, limit]`.
pub fn uniform_vector(rng: &mut SmallRng, len: usize, limit: f32) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-limit..=limit)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_for_is_deterministic_and_label_sensitive() {
        assert_eq!(seed_for(7, "layer.0"), seed_for(7, "layer.0"));
        assert_ne!(seed_for(7, "layer.0"), seed_for(7, "layer.1"));
        assert_ne!(seed_for(7, "layer.0"), seed_for(8, "layer.0"));
    }

    #[test]
    fn xavier_limit_respected() {
        let mut rng = rng_for(1, "w");
        let m = xavier_uniform(&mut rng, 16, 64);
        let limit = (6.0f32 / 80.0).sqrt() + 1e-6;
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn same_seed_same_weights() {
        let a = xavier_uniform(&mut rng_for(42, "enc"), 8, 8);
        let b = xavier_uniform(&mut rng_for(42, "enc"), 8, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_matrix_has_expected_spread() {
        let mut rng = rng_for(3, "n");
        let m = normal_matrix(&mut rng, 50, 50, 0.02);
        let mean = m.mean();
        assert!(mean.abs() < 0.01, "mean {mean} too far from zero");
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 2500.0;
        assert!((var.sqrt() - 0.02).abs() < 0.005);
    }

    #[test]
    fn uniform_vector_length_and_bounds() {
        let mut rng = rng_for(9, "bias");
        let v = uniform_vector(&mut rng, 32, 0.1);
        assert_eq!(v.len(), 32);
        assert!(v.iter().all(|x| x.abs() <= 0.1 + 1e-6));
    }
}
