//! Property-based tests for the tensor substrate.

use lovo_tensor::ops::{
    cosine_similarity, dot, euclidean, l2_norm, l2_normalize, similarity_to_distance,
    softmax_inplace, top_k_indices,
};
use lovo_tensor::Matrix;
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_is_a_distribution(mut v in prop::collection::vec(-50.0f32..50.0, 1..32)) {
        softmax_inplace(&mut v);
        let sum: f32 = v.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(v.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn normalization_gives_unit_vectors(mut v in small_vec(16)) {
        let original_norm = l2_norm(&v);
        l2_normalize(&mut v);
        if original_norm > 1e-3 {
            prop_assert!((l2_norm(&v) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_similarity_is_bounded(a in small_vec(8), b in small_vec(8)) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&s));
    }

    #[test]
    fn unit_vector_distance_matches_similarity(mut a in small_vec(8), mut b in small_vec(8)) {
        l2_normalize(&mut a);
        l2_normalize(&mut b);
        if l2_norm(&a) > 0.5 && l2_norm(&b) > 0.5 {
            let sim = dot(&a, &b);
            let dist = euclidean(&a, &b);
            prop_assert!((similarity_to_distance(sim) - dist).abs() < 1e-3);
        }
    }

    #[test]
    fn top_k_is_sorted_descending(v in prop::collection::vec(-100.0f32..100.0, 0..40), k in 0usize..50) {
        let idx = top_k_indices(&v, k);
        prop_assert_eq!(idx.len(), k.min(v.len()));
        for w in idx.windows(2) {
            prop_assert!(v[w[0]] >= v[w[1]]);
        }
    }

    #[test]
    fn matmul_is_associative_enough(
        a in prop::collection::vec(-2.0f32..2.0, 6),
        b in prop::collection::vec(-2.0f32..2.0, 6),
        c in prop::collection::vec(-2.0f32..2.0, 4),
    ) {
        // (A B) C == A (B C) for small matrices, within float tolerance.
        let a = Matrix::from_vec(2, 3, a).unwrap();
        let b = Matrix::from_vec(3, 2, b).unwrap();
        let c = Matrix::from_vec(2, 2, c).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_involution(data in prop::collection::vec(-5.0f32..5.0, 12)) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transposed_agrees_with_naive(
        a in prop::collection::vec(-3.0f32..3.0, 8),
        b in prop::collection::vec(-3.0f32..3.0, 12),
    ) {
        let a = Matrix::from_vec(2, 4, a).unwrap();
        let b = Matrix::from_vec(3, 4, b).unwrap();
        let fast = a.matmul_transposed(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
