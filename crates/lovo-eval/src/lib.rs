//! # lovo-eval
//!
//! Evaluation harness for the LOVO reproduction (§VII):
//!
//! * [`metrics`] — average precision (AveP) with the IoU > 0.5 positive-match
//!   rule, plus precision/recall helpers;
//! * [`workloads`] — the Table II queries (Q1.1–Q4.4), the motivation queries
//!   of Fig. 2, and the ActivityNet-QA extension queries of Table VI;
//! * [`experiments`] — one runner per table/figure of the evaluation section,
//!   each returning a printable [`experiments::Report`] whose rows mirror the
//!   paper artifact. The `lovo-bench` binaries are thin wrappers around these
//!   runners.
//!
//! Experiment scale: the runners default to laptop-scale dataset sizes so the
//! full suite completes in minutes; every runner accepts a scale factor where
//! the paper sweeps one.

pub mod experiments;
pub mod metrics;
pub mod workloads;

pub use experiments::Report;
pub use metrics::{average_precision, GroundTruthIndex};
pub use workloads::{extension_queries, motivation_queries, queries_for};
