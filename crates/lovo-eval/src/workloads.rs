//! The evaluation query workloads.
//!
//! * [`queries_for`] — the sixteen Table II queries, four per dataset
//!   (Q1.1–Q4.4), each with its natural-language text and the ground-truth
//!   attribute constraints the paper's annotators labelled by hand;
//! * [`motivation_queries`] — the three complexity levels of the motivation
//!   experiment (Fig. 2) on the Bellevue scenario;
//! * [`extension_queries`] — the ActivityNet-QA yes/no questions of Table VI
//!   (EQ1–EQ4).

use lovo_video::object::{
    Accessory, Activity, Color, Gender, Location, ObjectClass, Relation, SizeClass,
};
use lovo_video::query::{ObjectQuery, QueryComplexity, QueryConstraints};
use lovo_video::DatasetKind;

fn query(
    id: &str,
    text: &str,
    constraints: QueryConstraints,
    complexity: QueryComplexity,
) -> ObjectQuery {
    ObjectQuery::new(id, text, constraints, complexity)
}

/// The Table II queries for one dataset.
pub fn queries_for(kind: DatasetKind) -> Vec<ObjectQuery> {
    use QueryComplexity::{Complex, Normal, Simple};
    match kind {
        DatasetKind::Cityscapes => vec![
            query(
                "Q1.1",
                "A person walking on the street.",
                QueryConstraints {
                    class: Some(ObjectClass::Person),
                    activity: Some(Activity::Walking),
                    location: Some(Location::Sidewalk),
                    ..Default::default()
                },
                Simple,
            ),
            query(
                "Q1.2",
                "A person in light-colored clothing walking while holding a dark bag.",
                QueryConstraints {
                    class: Some(ObjectClass::Person),
                    color: Some(Color::Light),
                    activity: Some(Activity::Walking),
                    accessories: vec![Accessory::DarkBag],
                    ..Default::default()
                },
                Normal,
            ),
            query(
                "Q1.3",
                "A person riding a bicycle.",
                QueryConstraints {
                    class: Some(ObjectClass::Bicyclist),
                    activity: Some(Activity::RidingBicycle),
                    ..Default::default()
                },
                Simple,
            ),
            query(
                "Q1.4",
                "A person riding a bicycle, wearing a black t-shirt and blue jeans.",
                QueryConstraints {
                    class: Some(ObjectClass::Bicyclist),
                    activity: Some(Activity::RidingBicycle),
                    accessories: vec![Accessory::BlackTshirtBlueJeans],
                    ..Default::default()
                },
                Complex,
            ),
        ],
        DatasetKind::Bellevue => vec![
            query(
                "Q2.1",
                "A red car driving in the center of the road.",
                QueryConstraints {
                    class: Some(ObjectClass::Car),
                    color: Some(Color::Red),
                    location: Some(Location::RoadCenter),
                    ..Default::default()
                },
                Normal,
            ),
            query(
                "Q2.2",
                "A red car side by side with another car, both positioned in the center of the road.",
                QueryConstraints {
                    class: Some(ObjectClass::Car),
                    color: Some(Color::Red),
                    location: Some(Location::RoadCenter),
                    relation: Some(Relation::SideBySideWith(ObjectClass::Car)),
                    ..Default::default()
                },
                Complex,
            ),
            query(
                "Q2.3",
                "A bus driving on the road.",
                QueryConstraints {
                    class: Some(ObjectClass::Bus),
                    location: Some(Location::Road),
                    ..Default::default()
                },
                Simple,
            ),
            query(
                "Q2.4",
                "A bus driving on the road with white roof and yellow-green body.",
                QueryConstraints {
                    class: Some(ObjectClass::Bus),
                    color: Some(Color::YellowGreen),
                    accessories: vec![Accessory::WhiteRoof],
                    ..Default::default()
                },
                Complex,
            ),
        ],
        DatasetKind::Qvhighlights => vec![
            query(
                "Q3.1",
                "A woman smiling sitting inside car.",
                QueryConstraints {
                    class: Some(ObjectClass::Person),
                    gender: Some(Gender::Woman),
                    activity: Some(Activity::Sitting),
                    location: Some(Location::InsideCar),
                    ..Default::default()
                },
                Normal,
            ),
            query(
                "Q3.2",
                "A red-hair woman with white dress sitting inside a car.",
                QueryConstraints {
                    class: Some(ObjectClass::Person),
                    gender: Some(Gender::Woman),
                    location: Some(Location::InsideCar),
                    accessories: vec![Accessory::RedHair, Accessory::WhiteDress],
                    ..Default::default()
                },
                Complex,
            ),
            query(
                "Q3.3",
                "A white dog inside a car.",
                QueryConstraints {
                    class: Some(ObjectClass::Dog),
                    color: Some(Color::White),
                    location: Some(Location::InsideCar),
                    ..Default::default()
                },
                Normal,
            ),
            query(
                "Q3.4",
                "A white dog inside a car, next to a woman wearing black clothes.",
                QueryConstraints {
                    class: Some(ObjectClass::Dog),
                    color: Some(Color::White),
                    location: Some(Location::InsideCar),
                    relation: Some(Relation::NextTo(ObjectClass::Person)),
                    ..Default::default()
                },
                Complex,
            ),
        ],
        DatasetKind::Beach => vec![
            query(
                "Q4.1",
                "A green bus driving on the road.",
                QueryConstraints {
                    class: Some(ObjectClass::Bus),
                    color: Some(Color::Green),
                    location: Some(Location::Road),
                    ..Default::default()
                },
                Normal,
            ),
            query(
                "Q4.2",
                "A green bus with the white roof driving on the road.",
                QueryConstraints {
                    class: Some(ObjectClass::Bus),
                    color: Some(Color::Green),
                    accessories: vec![Accessory::WhiteRoof],
                    ..Default::default()
                },
                Complex,
            ),
            query(
                "Q4.3",
                "A truck driving on the road.",
                QueryConstraints {
                    class: Some(ObjectClass::Truck),
                    location: Some(Location::Road),
                    ..Default::default()
                },
                Simple,
            ),
            query(
                "Q4.4",
                "A small white truck filled with cargo driving on the road.",
                QueryConstraints {
                    class: Some(ObjectClass::Truck),
                    color: Some(Color::White),
                    size: Some(SizeClass::Small),
                    accessories: vec![Accessory::CargoLoad],
                    ..Default::default()
                },
                Complex,
            ),
        ],
        DatasetKind::ActivityNetQa => extension_queries(),
    }
}

/// The three motivation queries of Fig. 2 (Bellevue scenario).
pub fn motivation_queries() -> Vec<ObjectQuery> {
    vec![
        query(
            "M-simple",
            "car",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                ..Default::default()
            },
            QueryComplexity::Simple,
        ),
        query(
            "M-normal",
            "red car in road",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                color: Some(Color::Red),
                location: Some(Location::Road),
                ..Default::default()
            },
            QueryComplexity::Normal,
        ),
        query(
            "M-complex",
            "red car side by side with another car, positioned in the center of the road",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                color: Some(Color::Red),
                location: Some(Location::RoadCenter),
                relation: Some(Relation::SideBySideWith(ObjectClass::Car)),
                ..Default::default()
            },
            QueryComplexity::Complex,
        ),
    ]
}

/// The ActivityNet-QA extension queries of Table VI (EQ1–EQ4).
pub fn extension_queries() -> Vec<ObjectQuery> {
    vec![
        query(
            "EQ1",
            "does the car park on the meadow",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                activity: Some(Activity::Parked),
                location: Some(Location::Meadow),
                ..Default::default()
            },
            QueryComplexity::Complex,
        ),
        query(
            "EQ2",
            "is the person with a hat a man",
            QueryConstraints {
                class: Some(ObjectClass::Person),
                gender: Some(Gender::Man),
                accessories: vec![Accessory::Hat],
                ..Default::default()
            },
            QueryComplexity::Complex,
        ),
        query(
            "EQ3",
            "is the person in the red life jacket outdoors",
            QueryConstraints {
                class: Some(ObjectClass::Person),
                location: Some(Location::Outdoors),
                accessories: vec![Accessory::RedLifeJacket],
                ..Default::default()
            },
            QueryComplexity::Complex,
        ),
        query(
            "EQ4",
            "is the person in a grey skirt dancing in the room",
            QueryConstraints {
                class: Some(ObjectClass::Person),
                activity: Some(Activity::Dancing),
                location: Some(Location::Room),
                accessories: vec![Accessory::GreySkirt],
                ..Default::default()
            },
            QueryComplexity::Complex,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::{DatasetConfig, VideoCollection};

    #[test]
    fn each_dataset_has_four_queries_with_paper_ids() {
        for kind in [
            DatasetKind::Cityscapes,
            DatasetKind::Bellevue,
            DatasetKind::Qvhighlights,
            DatasetKind::Beach,
        ] {
            let queries = queries_for(kind);
            assert_eq!(queries.len(), 4, "{kind:?}");
            assert!(queries.iter().all(|q| q.id.starts_with('Q')));
        }
        assert_eq!(extension_queries().len(), 4);
        assert_eq!(motivation_queries().len(), 3);
    }

    #[test]
    fn every_query_has_ground_truth_in_its_default_dataset() {
        for kind in DatasetKind::ALL {
            let videos = VideoCollection::generate(DatasetConfig::for_kind(kind));
            for q in queries_for(kind) {
                let positives = videos
                    .iter_frames()
                    .filter(|(_, f)| q.frame_is_positive(f))
                    .count();
                assert!(
                    positives > 0,
                    "query {} has no ground truth in {kind:?}",
                    q.id
                );
            }
        }
    }

    #[test]
    fn query_text_parses_consistently_with_ground_truth_class() {
        // The text encoder's parse of each query should agree with the
        // workload's ground-truth class constraint (otherwise the system is
        // being evaluated on a different query than it executes).
        for kind in DatasetKind::ALL {
            for q in queries_for(kind) {
                let parsed = lovo_encoder::TextEncoder::parse(&q.text);
                assert_eq!(
                    parsed.class, q.constraints.class,
                    "class mismatch for {}: parsed {:?}",
                    q.id, parsed.class
                );
            }
        }
    }

    #[test]
    fn complexity_levels_are_distinct_in_motivation_set() {
        let m = motivation_queries();
        assert_eq!(m[0].complexity, QueryComplexity::Simple);
        assert_eq!(m[1].complexity, QueryComplexity::Normal);
        assert_eq!(m[2].complexity, QueryComplexity::Complex);
        assert!(m[0].constraints.is_predefined_class_only());
        assert!(!m[2].constraints.is_predefined_class_only());
    }
}
