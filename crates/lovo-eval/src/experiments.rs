//! One runner per table/figure of the paper's evaluation section.
//!
//! Every runner returns a [`Report`] whose rows mirror the corresponding
//! artifact (same row/series labels), so the `lovo-bench` binaries can print
//! them directly and EXPERIMENTS.md can record paper-vs-measured values.
//!
//! All runners take a `scale` in `(0, 1]` multiplying the dataset sizes: the
//! experiment binaries use `1.0` (minutes of runtime), the test-suite smoke
//! tests use small values (seconds). Reported latencies are the *modeled*
//! seconds described in `lovo-baselines` (calibrated per-frame costs of the
//! neural components on the paper's testbed) unless a row says otherwise.

use crate::metrics::{average_precision, GroundTruthIndex};
use crate::workloads::{extension_queries, motivation_queries, queries_for};
use lovo_baselines::{
    Figo, LovoSystem, Miris, ObjectQuerySystem, QueryResponse, Umt, Visa, Vocal, Zelda,
};
use lovo_core::LovoConfig;
use lovo_index::IndexKind;
use lovo_video::query::ObjectQuery;
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};
use serde::{Deserialize, Serialize};

/// Number of hits requested from every system when measuring AveP
/// (the paper takes 10x the ground-truth count; 50 covers that for the
/// laptop-scale collections).
pub const ACCURACY_TOP_K: usize = 50;

/// A printable experiment report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Which paper artifact this reproduces, e.g. `"Fig. 6"`.
    pub artifact: String,
    /// Report title.
    pub title: String,
    /// Column headers (the first column is the row label).
    pub columns: Vec<String>,
    /// Rows: label + one cell per column.
    pub rows: Vec<(String, Vec<String>)>,
    /// Free-form notes (scale caveats, paper-expectation reminders).
    pub notes: Vec<String>,
}

impl Report {
    fn new(artifact: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            artifact: artifact.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    fn push_row(&mut self, label: impl Into<String>, cells: Vec<String>) {
        self.rows.push((label.into(), cells));
    }

    fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::new();
        let header: Vec<String> = std::iter::once("".to_string())
            .chain(self.columns.iter().cloned())
            .collect();
        let all_rows: Vec<Vec<String>> = std::iter::once(header.clone())
            .chain(self.rows.iter().map(|(label, cells)| {
                std::iter::once(label.clone())
                    .chain(cells.iter().cloned())
                    .collect()
            }))
            .collect();
        for row in &all_rows {
            for (i, cell) in row.iter().enumerate() {
                if widths.len() <= i {
                    widths.push(0);
                }
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.artifact, self.title);
        for (r, row) in all_rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| {
                    format!("{cell:width$}", width = widths.get(i).copied().unwrap_or(0))
                })
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
            if r == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
                out.push('\n');
            }
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

fn fmt_s(seconds: f64) -> String {
    if seconds >= 100.0 {
        format!("{seconds:.0}")
    } else if seconds >= 1.0 {
        format!("{seconds:.1}")
    } else {
        format!("{seconds:.3}")
    }
}

fn fmt_ap(ap: f32) -> String {
    format!("{ap:.2}")
}

/// The evaluation-scale collection for a dataset kind: the default generator
/// configuration with its frame count scaled by `scale`.
pub fn evaluation_collection(kind: DatasetKind, scale: f64) -> VideoCollection {
    let base = DatasetConfig::for_kind(kind);
    let capped = match kind {
        DatasetKind::Bellevue => base.with_frames_per_video(900),
        DatasetKind::Beach => base.with_frames_per_video(800),
        DatasetKind::Cityscapes => base.with_num_videos(3).with_frames_per_video(400),
        DatasetKind::Qvhighlights => base.with_num_videos(8).with_frames_per_video(120),
        DatasetKind::ActivityNetQa => base.with_num_videos(8).with_frames_per_video(120),
    };
    let frames = ((capped.frames_per_video as f64 * scale).round() as usize).max(60);
    VideoCollection::generate(capped.with_frames_per_video(frames))
}

/// Evaluates one system on one query: AveP and the query response.
pub fn evaluate_query(
    system: &dyn ObjectQuerySystem,
    videos: &VideoCollection,
    query: &ObjectQuery,
    top: usize,
) -> (f32, QueryResponse) {
    let response = system.query(videos, query, top);
    let ground_truth = GroundTruthIndex::build(videos, query);
    let ap = if response.supported {
        average_precision(&response.hits, &ground_truth)
    } else {
        0.0
    };
    (ap, response)
}

/// The four main datasets of the evaluation (Table II).
pub const MAIN_DATASETS: [DatasetKind; 4] = [
    DatasetKind::Cityscapes,
    DatasetKind::Bellevue,
    DatasetKind::Qvhighlights,
    DatasetKind::Beach,
];

/// Fig. 2(a): motivation — per-query execution time of the method families
/// across query complexities.
pub fn fig2_motivation(scale: f64) -> Report {
    let videos = evaluation_collection(DatasetKind::Bellevue, scale);
    let mut report = Report::new(
        "Fig. 2(a)",
        "Execution time (modeled seconds) per query complexity",
        &["QA-index", "QD-search", "Hybrid", "Vision-based"],
    );

    let mut vocal = Vocal::new();
    let vocal_pre = vocal.preprocess(&videos);
    let miris = Miris::new();
    let mut zelda = Zelda::new();
    let zelda_pre = zelda.preprocess(&videos);

    for query in motivation_queries() {
        let qa = vocal.query(&videos, &query, ACCURACY_TOP_K);
        let qd = miris.query(&videos, &query, ACCURACY_TOP_K);
        let vision = zelda.query(&videos, &query, ACCURACY_TOP_K);
        // Hybrid: answer from the index when possible, otherwise fall back to
        // the QD-search scan on top of the failed index lookup.
        let hybrid = if qa.supported {
            qa.modeled_seconds
        } else {
            qa.modeled_seconds + qd.modeled_seconds
        };
        report.push_row(
            query.complexity.name(),
            vec![
                if qa.supported {
                    fmt_s(qa.modeled_seconds)
                } else {
                    "unsupported".to_string()
                },
                fmt_s(qd.modeled_seconds),
                fmt_s(hybrid),
                fmt_s(vision.modeled_seconds),
            ],
        );
    }
    report.note(format!(
        "one-time costs not shown: QA-index indexing {:.1}s, vision-based encoding {:.1}s",
        vocal_pre.modeled_seconds, zelda_pre.modeled_seconds
    ));
    report.note("paper expectation: QA-index ~0.5s but unsupported beyond simple; QD-search 10^2-10^4s; vision-based supports all at moderate cost");
    report
}

/// Fig. 6: AveP of LOVO and every baseline on the sixteen Table II queries.
pub fn fig6_accuracy(scale: f64) -> Report {
    let mut report = Report::new(
        "Fig. 6",
        "Average precision per query (n/s = query unsupported)",
        &["VOCAL", "ZELDA", "UMT", "VISA", "MIRIS", "FiGO", "LOVO"],
    );
    for kind in MAIN_DATASETS {
        let videos = evaluation_collection(kind, scale);
        let mut vocal = Vocal::new();
        vocal.preprocess(&videos);
        let mut zelda = Zelda::new();
        zelda.preprocess(&videos);
        let mut umt = Umt::new();
        umt.preprocess(&videos);
        let mut visa = Visa::new();
        visa.preprocess(&videos);
        let miris = Miris::new();
        let figo = Figo::new();
        let mut lovo = LovoSystem::default();
        lovo.preprocess(&videos);
        let systems: Vec<&dyn ObjectQuerySystem> =
            vec![&vocal, &zelda, &umt, &visa, &miris, &figo, &lovo];
        for query in queries_for(kind) {
            let cells = systems
                .iter()
                .map(|system| {
                    if !system.supports(&query) {
                        "n/s".to_string()
                    } else {
                        let (ap, _) = evaluate_query(*system, &videos, &query, ACCURACY_TOP_K);
                        fmt_ap(ap)
                    }
                })
                .collect();
            report.push_row(query.id.clone(), cells);
        }
    }
    report.note("paper expectation: LOVO highest or tied-highest AveP on every query; VOCAL unsupported beyond predefined classes; MIRIS/FiGO degrade on attribute/relation queries");
    report
}

/// Fig. 7: qualitative top-1 frame of each method for Q4.2 on the Beach scenario.
pub fn fig7_qualitative(scale: f64) -> Report {
    let videos = evaluation_collection(DatasetKind::Beach, scale);
    let query = queries_for(DatasetKind::Beach)
        .into_iter()
        .find(|q| q.id == "Q4.2")
        .expect("Q4.2 exists");
    let mut report = Report::new(
        "Fig. 7",
        "Top-1 retrieved frame for Q4.2 (green bus with white roof)",
        &["top-1 frame", "content of the returned box", "correct?"],
    );
    let mut zelda = Zelda::new();
    zelda.preprocess(&videos);
    let mut umt = Umt::new();
    umt.preprocess(&videos);
    let mut visa = Visa::new();
    visa.preprocess(&videos);
    let miris = Miris::new();
    let figo = Figo::new();
    let mut lovo = LovoSystem::default();
    lovo.preprocess(&videos);
    let ground_truth = GroundTruthIndex::build(&videos, &query);
    let systems: Vec<&dyn ObjectQuerySystem> = vec![&miris, &figo, &umt, &zelda, &visa, &lovo];
    for system in systems {
        let response = system.query(&videos, &query, 1);
        let (frame_label, description, correct) = match response.hits.first() {
            Some(hit) => {
                let frame = &videos.videos[hit.video_id as usize].frames[hit.frame_index as usize];
                let description = frame
                    .objects
                    .iter()
                    .max_by(|a, b| {
                        hit.bbox
                            .iou(&a.bbox)
                            .partial_cmp(&hit.bbox.iou(&b.bbox))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|o| o.attributes.describe())
                    .unwrap_or_else(|| "no object under the box".to_string());
                (
                    format!("video {} frame {}", hit.video_id, hit.frame_index),
                    description,
                    ground_truth.is_match(hit),
                )
            }
            None => ("-".to_string(), "no result".to_string(), false),
        };
        report.push_row(
            system.name(),
            vec![
                frame_label,
                description,
                if correct { "yes" } else { "no" }.to_string(),
            ],
        );
    }
    report.note("paper expectation: only LOVO returns a green, white-roofed bus; baselines return wrong colour/class or incomplete objects");
    report
}

/// Fig. 8: search and total runtime of MIRIS, FiGO and LOVO per dataset.
pub fn fig8_runtime(scale: f64) -> Report {
    let mut report = Report::new(
        "Fig. 8",
        "Per-query runtime (modeled seconds): search / total",
        &[
            "MIRIS search",
            "MIRIS total",
            "FiGO search",
            "FiGO total",
            "LOVO search",
            "LOVO total",
            "LOVO search speedup",
        ],
    );
    for kind in MAIN_DATASETS {
        let videos = evaluation_collection(kind, scale);
        let queries = queries_for(kind);
        let miris = Miris::new();
        let figo = Figo::new();
        let mut lovo = LovoSystem::default();
        let lovo_pre = lovo.preprocess(&videos);
        let mean = |f: &dyn Fn(&ObjectQuery) -> f64| {
            queries.iter().map(f).sum::<f64>() / queries.len() as f64
        };
        let miris_search = mean(&|q| miris.query(&videos, q, ACCURACY_TOP_K).modeled_seconds);
        let figo_search = mean(&|q| figo.query(&videos, q, ACCURACY_TOP_K).modeled_seconds);
        let lovo_search = mean(&|q| lovo.query(&videos, q, ACCURACY_TOP_K).modeled_seconds);
        // QD-search systems pay their full cost per query; LOVO amortizes its
        // one-time processing and pays only the search at query time.
        let miris_total = miris_search + 2.0;
        let figo_total = figo_search + 1.0;
        let lovo_total = lovo_search + lovo_pre.modeled_seconds;
        let speedup = figo_search.max(miris_search) / lovo_search.max(1e-9);
        report.push_row(
            kind.name(),
            vec![
                fmt_s(miris_search),
                fmt_s(miris_total),
                fmt_s(figo_search),
                fmt_s(figo_total),
                fmt_s(lovo_search),
                fmt_s(lovo_total),
                format!("{speedup:.0}x"),
            ],
        );
    }
    report.note("paper expectation: LOVO search up to ~85x faster than the slower QD-search system; totals 9-23x better than MIRIS");
    report
}

/// Table III: processing / search / total time of ZELDA, UMT, VISA and LOVO.
pub fn table3_vision_methods(scale: f64) -> Report {
    let mut report = Report::new(
        "Table III",
        "Vision-based and end-to-end methods (modeled seconds)",
        &[
            "ZELDA proc",
            "ZELDA search",
            "UMT proc",
            "UMT search",
            "VISA proc",
            "VISA search",
            "LOVO proc",
            "LOVO search",
        ],
    );
    for kind in MAIN_DATASETS {
        let videos = evaluation_collection(kind, scale);
        let queries = queries_for(kind);
        let mut zelda = Zelda::new();
        let zelda_pre = zelda.preprocess(&videos);
        let mut umt = Umt::new();
        let umt_pre = umt.preprocess(&videos);
        let mut visa = Visa::new();
        let visa_pre = visa.preprocess(&videos);
        let mut lovo = LovoSystem::default();
        let lovo_pre = lovo.preprocess(&videos);
        let mean = |system: &dyn ObjectQuerySystem| {
            queries
                .iter()
                .map(|q| system.query(&videos, q, ACCURACY_TOP_K).modeled_seconds)
                .sum::<f64>()
                / queries.len() as f64
        };
        report.push_row(
            kind.name(),
            vec![
                fmt_s(zelda_pre.modeled_seconds),
                fmt_s(mean(&zelda)),
                fmt_s(umt_pre.modeled_seconds),
                fmt_s(mean(&umt)),
                fmt_s(visa_pre.modeled_seconds),
                fmt_s(mean(&visa)),
                fmt_s(lovo_pre.modeled_seconds),
                fmt_s(mean(&lovo)),
            ],
        );
    }
    report.note("paper expectation: ZELDA search fastest but least precise; UMT search dominates its total; VISA slowest overall; LOVO search tens of seconds, dominated by rerank");
    report
}

/// Fig. 9: time distribution of LOVO query execution per dataset.
pub fn fig9_breakdown(scale: f64) -> Report {
    let mut report = Report::new(
        "Fig. 9",
        "LOVO time distribution (modeled seconds)",
        &["processing", "rerank", "indexing + fast search"],
    );
    for kind in MAIN_DATASETS {
        let videos = evaluation_collection(kind, scale);
        let queries = queries_for(kind);
        let mut lovo = LovoSystem::default();
        let pre = lovo.preprocess(&videos);
        let system = lovo.inner().expect("built");
        let mut rerank = 0.0f64;
        let mut fast = 0.0f64;
        for query in &queries {
            let result = system.query(&query.text).expect("query");
            rerank += result.reranked_frames as f64
                * lovo_baselines::lovo_adapter::RERANK_SECONDS_PER_FRAME;
            fast += result.timings.fast_search_seconds + result.timings.text_encoding_seconds;
        }
        rerank /= queries.len() as f64;
        fast /= queries.len() as f64;
        let indexing = system.ingest_stats().indexing_seconds;
        report.push_row(
            kind.name(),
            vec![
                fmt_s(pre.modeled_seconds),
                fmt_s(rerank),
                fmt_s(indexing + fast),
            ],
        );
    }
    report.note("paper expectation: offline processing largest, rerank next, indexing + fast search smallest");
    report
}

/// Fig. 10: scalability of total and search time with video duration.
pub fn fig10_scalability(durations_seconds: &[f64]) -> Report {
    let mut report = Report::new(
        "Fig. 10",
        "Scalability with video duration (modeled seconds)",
        &[
            "VOCAL total",
            "MIRIS total",
            "FiGO total",
            "LOVO total",
            "VOCAL search",
            "MIRIS search",
            "FiGO search",
            "LOVO search",
        ],
    );
    let query = &queries_for(DatasetKind::Bellevue)[0];
    for &duration in durations_seconds {
        let config =
            DatasetConfig::for_kind(DatasetKind::Bellevue).with_total_duration_seconds(duration);
        let videos = VideoCollection::generate(config);
        let mut vocal = Vocal::new();
        let vocal_pre = vocal.preprocess(&videos);
        let miris = Miris::new();
        let figo = Figo::new();
        let mut lovo = LovoSystem::default();
        let lovo_pre = lovo.preprocess(&videos);

        let vocal_q = vocal.query(&videos, query, ACCURACY_TOP_K);
        let miris_q = miris.query(&videos, query, ACCURACY_TOP_K);
        let figo_q = figo.query(&videos, query, ACCURACY_TOP_K);
        let lovo_q = lovo.query(&videos, query, ACCURACY_TOP_K);
        report.push_row(
            format!("{duration:.0}s"),
            vec![
                fmt_s(vocal_pre.modeled_seconds + vocal_q.modeled_seconds),
                fmt_s(miris_q.modeled_seconds),
                fmt_s(figo_q.modeled_seconds),
                fmt_s(lovo_pre.modeled_seconds + lovo_q.modeled_seconds),
                fmt_s(vocal_q.modeled_seconds),
                fmt_s(miris_q.modeled_seconds),
                fmt_s(figo_q.modeled_seconds),
                fmt_s(lovo_q.modeled_seconds),
            ],
        );
    }
    report.note("paper expectation: QD-search total/search grows steeply with duration; LOVO search stays nearly flat");
    report
}

/// Fig. 11: module-level scalability of LOVO.
pub fn fig11_modules(scale: f64) -> Report {
    let mut report = Report::new("Fig. 11", "Module scalability", &["value"]);

    // (a) processing time vs number of key frames (modeled, 0.08 s/frame).
    for frames in [500usize, 1_000, 2_000, 4_000] {
        let scaled = ((frames as f64) * scale).round().max(50.0) as usize;
        report.push_row(
            format!("(a) processing time for {scaled} key frames"),
            vec![fmt_s(
                scaled as f64 * lovo_baselines::lovo_adapter::PROCESSING_SECONDS_PER_KEYFRAME,
            )],
        );
    }

    // (b) index size and fast-search time vs inserted entities (real measurements).
    for entities in [2_000usize, 10_000, 40_000] {
        use lovo_index::VectorIndex as _;
        let entities = ((entities as f64) * scale).round().max(500.0) as usize;
        let dim = 32;
        let mut index = lovo_index::IvfPqIndex::new(lovo_index::IvfPqConfig::for_dim(dim)).unwrap();
        let mut rng_state = 1u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / u32::MAX as f32) - 0.5
        };
        let mut query = vec![0.0f32; dim];
        for i in 0..entities {
            let mut v: Vec<f32> = (0..dim).map(|_| next()).collect();
            lovo_index::metric::normalize(&mut v);
            if i == 0 {
                query = v.clone();
            }
            index.insert(i as u64, &v).unwrap();
        }
        lovo_index::VectorIndex::build(&mut index).unwrap();
        let start = std::time::Instant::now();
        let _ = lovo_index::VectorIndex::search(&index, &query, 50).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        report.push_row(
            format!("(b) {entities} entities"),
            vec![format!(
                "index {:.1} MB, fast search {:.4}s",
                lovo_index::VectorIndex::memory_bytes(&index) as f64 / 1e6,
                elapsed
            )],
        );
    }

    // (c) fast-search time per entity per dataset (real measurements).
    for kind in MAIN_DATASETS {
        let videos = evaluation_collection(kind, (scale * 0.5).max(0.05));
        let mut lovo = LovoSystem::default();
        lovo.preprocess(&videos);
        let system = lovo.inner().expect("built");
        let query = &queries_for(kind)[0];
        let result = system.query(&query.text).expect("query");
        let per_entity =
            result.timings.fast_search_seconds / system.indexed_patches().max(1) as f64;
        report.push_row(
            format!("(c) {} fast search per entity", kind.name()),
            vec![format!("{per_entity:.2e} s")],
        );
    }

    // (d) rerank time vs number of candidate objects (modeled 0.9 s/frame).
    for objects in [1_000usize, 5_000, 10_000, 15_000] {
        let frames = objects / 10; // ~10 objects per candidate frame
        report.push_row(
            format!("(d) rerank time for {objects} objects"),
            vec![fmt_s(
                frames as f64 * lovo_baselines::lovo_adapter::RERANK_SECONDS_PER_FRAME * scale,
            )],
        );
    }
    report.note("paper expectation: (a) linear ~0.08s/frame, (b) search stays <1s as the index grows, (c) ~1e-4s per entity, (d) rerank grows gradually, ~1s per key frame");
    report
}

/// Table IV: ablation study on Cityscapes and Bellevue.
pub fn table4_ablation(scale: f64) -> Report {
    let mut report = Report::new(
        "Table IV",
        "Ablations: AveP / fast-search seconds (wall) / rerank seconds (modeled)",
        &["AveP", "Fast Search", "Rerank"],
    );
    let variants: [(&str, LovoConfig); 4] = [
        ("LOVO", LovoConfig::default()),
        ("w/o Rerank", LovoConfig::ablation_without_rerank()),
        ("w/o ANNS", LovoConfig::ablation_without_anns()),
        ("w/o Key frame", LovoConfig::ablation_without_keyframe()),
    ];
    for (kind, query_ids) in [
        (DatasetKind::Cityscapes, ["Q1.1", "Q1.2"]),
        (DatasetKind::Bellevue, ["Q2.1", "Q2.2"]),
    ] {
        let videos = evaluation_collection(kind, scale);
        let queries: Vec<ObjectQuery> = queries_for(kind)
            .into_iter()
            .filter(|q| query_ids.contains(&q.id.as_str()))
            .collect();
        for (variant_name, config) in &variants {
            let mut lovo = LovoSystem::new(*config);
            lovo.preprocess(&videos);
            for query in &queries {
                let (ap, _) = evaluate_query(&lovo, &videos, query, ACCURACY_TOP_K);
                let system = lovo.inner().expect("built");
                let result = system.query(&query.text).expect("query");
                let rerank_modeled = result.reranked_frames as f64
                    * lovo_baselines::lovo_adapter::RERANK_SECONDS_PER_FRAME;
                report.push_row(
                    format!("{} {variant_name}", query.id),
                    vec![
                        fmt_ap(ap),
                        format!("{:.4}", result.timings.fast_search_seconds),
                        if result.reranked_frames == 0 {
                            "-".to_string()
                        } else {
                            fmt_s(rerank_modeled)
                        },
                    ],
                );
            }
        }
    }
    report.note("paper expectation: removing rerank hurts complex queries (Q2.2) most; removing ANNS slows fast search 57-289%; removing key-frame selection slows fast search ~10x and grows storage");
    report
}

/// Table V: ANN variants (BF, IVF-PQ, HNSW) on the Cityscapes queries.
pub fn table5_ann_variants(scale: f64) -> Report {
    let mut report = Report::new(
        "Table V",
        "ANN variants on Cityscapes: AveP / search seconds (modeled) / total seconds (modeled)",
        &["AveP", "Search", "Total"],
    );
    let videos = evaluation_collection(DatasetKind::Cityscapes, scale);
    let queries = queries_for(DatasetKind::Cityscapes);
    for (name, kind) in [
        ("BF", IndexKind::BruteForce),
        ("IVF-PQ", IndexKind::IvfPq),
        ("HNSW", IndexKind::Hnsw),
    ] {
        let mut lovo = LovoSystem::new(LovoConfig::default().with_index_kind(kind));
        let pre = lovo.preprocess(&videos);
        for query in &queries {
            let (ap, response) = evaluate_query(&lovo, &videos, query, ACCURACY_TOP_K);
            report.push_row(
                format!("{} LOVO({name})", query.id),
                vec![
                    fmt_ap(ap),
                    fmt_s(response.modeled_seconds),
                    fmt_s(response.modeled_seconds + pre.modeled_seconds),
                ],
            );
        }
    }
    report.note("paper expectation: all three variants reach similar AveP; BF slightly more accurate but slowest; IVF-PQ balances accuracy, latency and memory");
    report
}

/// Incremental ingest (segmented storage engine): wall-clock cost of
/// appending a new batch of footage with `Lovo::add_videos` vs rebuilding the
/// whole collection from scratch, plus the segment bookkeeping that proves
/// appends never rebuild existing segments.
pub fn incremental_ingest(scale: f64) -> Report {
    use lovo_core::Lovo;
    let mut report = Report::new(
        "Incremental ingest",
        "Append cost vs full rebuild (wall-clock seconds)",
        &[
            "append s",
            "rebuild s",
            "speedup",
            "entities",
            "sealed segments",
            "index builds",
        ],
    );
    let frames = ((500.0 * scale).round() as usize).max(60);
    let config = LovoConfig::default();
    let base = DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(frames);

    let first = VideoCollection::generate(base.clone().with_seed(101));
    let engine = Lovo::build(&first, config).expect("initial build");
    let initial = engine.ingest_stats();
    let stats = engine.collection_stats();
    report.push_row(
        "initial build",
        vec![
            "-".to_string(),
            fmt_s(initial.total_seconds()),
            "-".to_string(),
            stats.entities.to_string(),
            stats.sealed_segments.to_string(),
            stats.index_builds.to_string(),
        ],
    );

    let mut combined = first;
    for (batch_no, seed) in [103u64, 107, 109].into_iter().enumerate() {
        let mut batch = VideoCollection::generate(base.clone().with_seed(seed));
        let offset = combined.videos.len() as u32;
        for video in &mut batch.videos {
            video.id += offset;
        }

        let run = engine.add_videos(&batch).expect("append");
        combined.videos.extend(batch.videos);

        // The baseline the segmented engine replaces: a monolithic index must
        // re-summarize and re-index everything on any change.
        let rebuilt = Lovo::build(&combined, config).expect("rebuild");
        let rebuild_seconds = rebuilt.ingest_stats().total_seconds();
        let append_seconds = run.total_seconds();
        let stats = engine.collection_stats();
        report.push_row(
            format!("append batch {}", batch_no + 1),
            vec![
                fmt_s(append_seconds),
                fmt_s(rebuild_seconds),
                format!("{:.1}x", rebuild_seconds / append_seconds.max(1e-9)),
                stats.entities.to_string(),
                stats.sealed_segments.to_string(),
                stats.index_builds.to_string(),
            ],
        );
    }

    let compaction = engine.compact().expect("compact");
    let stats = engine.collection_stats();
    report.push_row(
        "after compaction",
        vec![
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            stats.entities.to_string(),
            stats.sealed_segments.to_string(),
            stats.index_builds.to_string(),
        ],
    );
    report.note(format!(
        "compaction merged {} undersized segments into {}",
        compaction.segments_merged, compaction.segments_created
    ));
    report.note("expectation: append cost stays flat while rebuild cost grows with the collection; index builds grow by exactly the segments each append seals");
    report
}

/// Table VII: the ActivityNet-QA extension queries.
pub fn table7_extension(scale: f64) -> Report {
    let mut report = Report::new(
        "Table VII",
        "ActivityNet-QA extension: AveP / search seconds (modeled) / total seconds (modeled)",
        &["AveP", "Search", "Total"],
    );
    let videos = evaluation_collection(DatasetKind::ActivityNetQa, scale);
    let mut lovo = LovoSystem::default();
    let pre = lovo.preprocess(&videos);
    for query in extension_queries() {
        let (ap, response) = evaluate_query(&lovo, &videos, &query, ACCURACY_TOP_K);
        report.push_row(
            query.id.clone(),
            vec![
                fmt_ap(ap),
                fmt_s(response.modeled_seconds),
                fmt_s(response.modeled_seconds + pre.modeled_seconds),
            ],
        );
    }
    report.note(
        "paper expectation: LOVO answers open-ended QA-style queries with high AveP (0.72-0.99)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE_SCALE: f64 = 0.12;

    #[test]
    fn report_rendering_includes_rows_and_notes() {
        let mut r = Report::new("Fig. X", "demo", &["a", "b"]);
        r.push_row("row1", vec!["1".into(), "2".into()]);
        r.note("hello");
        let text = r.render();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("row1"));
        assert!(text.contains("note: hello"));
    }

    #[test]
    fn fig2_smoke() {
        let report = fig2_motivation(SMOKE_SCALE);
        assert_eq!(report.rows.len(), 3);
        // QA-index must be unsupported for the complex query.
        assert!(report.rows[2].1[0].contains("unsupported"));
    }

    #[test]
    fn ablation_smoke_has_all_variants() {
        let report = table4_ablation(SMOKE_SCALE);
        // 2 datasets x 2 queries x 4 variants
        assert_eq!(report.rows.len(), 16);
        assert!(report
            .rows
            .iter()
            .any(|(label, _)| label.contains("w/o Rerank")));
    }

    #[test]
    fn extension_smoke_produces_four_rows() {
        let report = table7_extension(SMOKE_SCALE);
        assert_eq!(report.rows.len(), 4);
        // AveP values parse as numbers in [0, 1].
        for (_, cells) in &report.rows {
            let ap: f32 = cells[0].parse().unwrap();
            assert!((0.0..=1.0).contains(&ap));
        }
    }

    #[test]
    fn incremental_ingest_report_tracks_segment_bookkeeping() {
        let report = incremental_ingest(SMOKE_SCALE);
        // initial build + 3 appends + compaction summary.
        assert_eq!(report.rows.len(), 5);
        assert!(report.rows[3].0.contains("append batch 3"));
        // The deterministic invariants (wall-clock columns are reported but
        // not asserted — timing under a parallel test harness is noisy):
        // entities and index builds grow strictly with every append, and
        // compaction conserves entities while shrinking the segment count.
        let column = |row: usize, col: usize| -> usize { report.rows[row].1[col].parse().unwrap() };
        for row in 1..4 {
            assert!(column(row, 3) > column(row - 1, 3), "entities row {row}");
            assert!(column(row, 5) > column(row - 1, 5), "builds row {row}");
            assert_eq!(column(row, 4), column(row - 1, 4) + 1, "segments row {row}");
        }
        assert_eq!(column(4, 3), column(3, 3), "compaction conserves entities");
        assert!(column(4, 4) < column(3, 4), "compaction narrows fan-out");
    }

    #[test]
    fn scalability_search_time_grows_slower_for_lovo_than_qd_search() {
        let report = fig10_scalability(&[20.0, 150.0]);
        assert_eq!(report.rows.len(), 2);
        let parse = |s: &str| s.parse::<f64>().unwrap();
        let miris_small = parse(&report.rows[0].1[5]);
        let miris_large = parse(&report.rows[1].1[5]);
        let lovo_large: f64 = parse(&report.rows[1].1[7]);
        assert!(
            miris_large > miris_small * 1.5,
            "MIRIS search should grow with duration ({miris_small} -> {miris_large})"
        );
        // At the larger duration LOVO's search (which saturates at the fixed
        // top-k rerank budget) must be several times cheaper than QD-search.
        assert!(
            lovo_large * 3.0 < miris_large,
            "LOVO search {lovo_large}s should be well below MIRIS {miris_large}s"
        );
    }
}
