//! Retrieval metrics (§VII-A).
//!
//! The paper measures Average Precision (AveP): retrieved objects are ranked
//! by score, an object counts as a positive match when its IoU with a
//! ground-truth box exceeds 0.5 (the MSCOCO rule), and AveP is the area under
//! the precision–recall curve of that ranking.

use lovo_baselines::RankedHit;
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use std::collections::{HashMap, HashSet};

/// Ground truth for one query over one video collection: for every frame that
/// contains at least one matching object, the boxes of the matching objects.
#[derive(Debug, Clone, Default)]
pub struct GroundTruthIndex {
    /// `(video, frame) -> matching ground-truth boxes`.
    frames: HashMap<(u32, u32), Vec<lovo_video::BoundingBox>>,
}

impl GroundTruthIndex {
    /// Builds the ground truth of `query` over `videos`.
    pub fn build(videos: &VideoCollection, query: &ObjectQuery) -> Self {
        let mut frames: HashMap<(u32, u32), Vec<lovo_video::BoundingBox>> = HashMap::new();
        for video in &videos.videos {
            for frame in &video.frames {
                let boxes: Vec<lovo_video::BoundingBox> = frame
                    .objects
                    .iter()
                    .filter(|o| query.constraints.matches(&o.attributes))
                    .map(|o| o.bbox)
                    .collect();
                if !boxes.is_empty() {
                    frames.insert((video.id, frame.index as u32), boxes);
                }
            }
        }
        Self { frames }
    }

    /// Number of positive frames.
    pub fn positive_frames(&self) -> usize {
        self.frames.len()
    }

    /// True when the collection contains no object matching the query.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether a ranked hit is a true positive: its frame contains a matching
    /// object whose box overlaps the hit's box with IoU > 0.5.
    pub fn is_match(&self, hit: &RankedHit) -> bool {
        self.frames
            .get(&(hit.video_id, hit.frame_index))
            .map(|boxes| boxes.iter().any(|b| hit.bbox.iou(b) > 0.5))
            .unwrap_or(false)
    }
}

/// Average precision of a ranked hit list against the ground truth.
///
/// Duplicate frames after their first occurrence count as false positives
/// (systems cannot inflate AveP by returning the same frame repeatedly). The
/// normalizer is the number of positive frames capped at the list length, so a
/// perfect ranking of `k` hits over a corpus with ≥ `k` positives scores 1.0.
pub fn average_precision(hits: &[RankedHit], ground_truth: &GroundTruthIndex) -> f32 {
    if hits.is_empty() || ground_truth.is_empty() {
        return 0.0;
    }
    let relevant = ground_truth.positive_frames().min(hits.len()).max(1) as f32;
    let mut seen_frames: HashSet<(u32, u32)> = HashSet::new();
    let mut true_positives = 0.0f32;
    let mut ap = 0.0f32;
    for (rank, hit) in hits.iter().enumerate() {
        let first_time = seen_frames.insert((hit.video_id, hit.frame_index));
        if first_time && ground_truth.is_match(hit) {
            true_positives += 1.0;
            ap += true_positives / (rank as f32 + 1.0);
        }
    }
    (ap / relevant).min(1.0)
}

/// Precision at cut-off `k` (fraction of the first `k` hits that are matches).
pub fn precision_at(hits: &[RankedHit], ground_truth: &GroundTruthIndex, k: usize) -> f32 {
    if k == 0 {
        return 0.0;
    }
    let considered = hits.iter().take(k);
    let total = considered.clone().count();
    if total == 0 {
        return 0.0;
    }
    let matches = considered.filter(|h| ground_truth.is_match(h)).count();
    matches as f32 / total as f32
}

/// Recall at cut-off `k` against the positive-frame count.
pub fn recall_at(hits: &[RankedHit], ground_truth: &GroundTruthIndex, k: usize) -> f32 {
    if ground_truth.is_empty() {
        return 0.0;
    }
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut matched_frames: HashSet<(u32, u32)> = HashSet::new();
    for hit in hits.iter().take(k) {
        if seen.insert((hit.video_id, hit.frame_index)) && ground_truth.is_match(hit) {
            matched_frames.insert((hit.video_id, hit.frame_index));
        }
    }
    matched_frames.len() as f32 / ground_truth.positive_frames() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::bbox::BoundingBox;
    use lovo_video::object::{Color, ObjectAttributes, ObjectClass};
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::scene::{SceneObject, TrackId};
    use lovo_video::{DatasetConfig, DatasetKind, Frame, Video};

    fn collection_with_red_cars() -> (VideoCollection, ObjectQuery) {
        // 10 frames; frames 2, 5, 8 contain a red car at a known box.
        let mut frames = Vec::new();
        for i in 0..10usize {
            let mut f = Frame::empty(i, i as f64, 1280, 720);
            if i % 3 == 2 {
                f.objects.push(SceneObject {
                    track: TrackId(i as u64),
                    attributes: ObjectAttributes::simple(ObjectClass::Car).with_color(Color::Red),
                    bbox: BoundingBox::new(100.0, 100.0, 200.0, 100.0),
                    velocity: (0.0, 0.0),
                });
            }
            frames.push(f);
        }
        let videos = VideoCollection {
            config: DatasetConfig::for_kind(DatasetKind::Bellevue),
            videos: vec![Video { id: 0, frames }],
        };
        let query = ObjectQuery::new(
            "T",
            "a red car",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                color: Some(Color::Red),
                ..Default::default()
            },
            QueryComplexity::Normal,
        );
        (videos, query)
    }

    fn hit(frame: u32, bbox: BoundingBox, score: f32) -> RankedHit {
        RankedHit {
            video_id: 0,
            frame_index: frame,
            bbox,
            score,
        }
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let (videos, query) = collection_with_red_cars();
        let gt = GroundTruthIndex::build(&videos, &query);
        assert_eq!(gt.positive_frames(), 3);
        let target_box = BoundingBox::new(100.0, 100.0, 200.0, 100.0);
        let hits = vec![
            hit(2, target_box, 0.9),
            hit(5, target_box, 0.8),
            hit(8, target_box, 0.7),
        ];
        assert!((average_precision(&hits, &gt) - 1.0).abs() < 1e-5);
        assert!((precision_at(&hits, &gt, 3) - 1.0).abs() < 1e-5);
        assert!((recall_at(&hits, &gt, 3) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn wrong_frames_score_zero() {
        let (videos, query) = collection_with_red_cars();
        let gt = GroundTruthIndex::build(&videos, &query);
        let hits = vec![
            hit(0, BoundingBox::new(0.0, 0.0, 50.0, 50.0), 0.9),
            hit(1, BoundingBox::new(0.0, 0.0, 50.0, 50.0), 0.8),
        ];
        assert_eq!(average_precision(&hits, &gt), 0.0);
    }

    #[test]
    fn wrong_box_in_right_frame_is_not_a_match() {
        let (videos, query) = collection_with_red_cars();
        let gt = GroundTruthIndex::build(&videos, &query);
        let hits = vec![hit(2, BoundingBox::new(900.0, 500.0, 50.0, 50.0), 0.9)];
        assert_eq!(average_precision(&hits, &gt), 0.0);
    }

    #[test]
    fn mixed_ranking_is_between_zero_and_one() {
        let (videos, query) = collection_with_red_cars();
        let gt = GroundTruthIndex::build(&videos, &query);
        let target_box = BoundingBox::new(100.0, 100.0, 200.0, 100.0);
        let good_first = vec![
            hit(2, target_box, 0.9),
            hit(0, target_box, 0.8),
            hit(5, target_box, 0.7),
        ];
        let bad_first = vec![
            hit(0, target_box, 0.9),
            hit(2, target_box, 0.8),
            hit(5, target_box, 0.7),
        ];
        let ap_good = average_precision(&good_first, &gt);
        let ap_bad = average_precision(&bad_first, &gt);
        assert!(ap_good > ap_bad, "{ap_good} vs {ap_bad}");
        assert!(ap_good > 0.0 && ap_good < 1.0 + 1e-6);
    }

    #[test]
    fn duplicate_frames_do_not_inflate_score() {
        let (videos, query) = collection_with_red_cars();
        let gt = GroundTruthIndex::build(&videos, &query);
        let target_box = BoundingBox::new(100.0, 100.0, 200.0, 100.0);
        let duplicated = vec![
            hit(2, target_box, 0.9),
            hit(2, target_box, 0.85),
            hit(2, target_box, 0.8),
        ];
        let unique = vec![
            hit(2, target_box, 0.9),
            hit(5, target_box, 0.85),
            hit(8, target_box, 0.8),
        ];
        assert!(average_precision(&duplicated, &gt) < average_precision(&unique, &gt));
    }

    #[test]
    fn empty_inputs_are_zero() {
        let (videos, query) = collection_with_red_cars();
        let gt = GroundTruthIndex::build(&videos, &query);
        assert_eq!(average_precision(&[], &gt), 0.0);
        assert_eq!(recall_at(&[], &gt, 5), 0.0);
        assert_eq!(precision_at(&[], &gt, 0), 0.0);
    }
}
