//! # lovo-serve
//!
//! The serving layer of the LOVO reproduction: a concurrent, multi-tenant
//! front end over the single-caller [`lovo_core::Lovo`] engine.
//!
//! The engine answers one `query_spec` call at a time per caller; a traffic
//! analytics deployment (LAVA-style: many users issuing overlapping
//! language queries over the same camera feeds) needs more than that. This
//! crate adds the three server-side mechanisms that LOVO's two-stage design
//! (cheap coarse search + bounded rerank, §VI of the paper) makes
//! profitable:
//!
//! * **Admission control** — [`QueryService::submit`] enqueues into a
//!   bounded queue served by a fixed worker pool. When the queue is full the
//!   submission is refused *immediately* with the typed
//!   [`ServeError::Rejected`] instead of queueing unboundedly: under
//!   overload, latency stays bounded and callers get a signal they can back
//!   off on.
//! * **Micro-batch coalescing** — submissions that arrive within a small
//!   window are executed as one [`lovo_core::Lovo::query_batch`]-style pass,
//!   sharing one collection lock acquisition and one storage-segment walk.
//!   Duplicate submissions (same plan fingerprint) inside a batch are
//!   executed once and fanned back out to every waiter.
//! * **Plan-keyed result cache** — a sharded LRU keyed by the normalized
//!   [`lovo_core::QueryPlan::fingerprint`] (text + effective `k` + flattened
//!   predicate), invalidated by the engine's ingest epoch
//!   ([`lovo_core::Lovo::ingest_epoch`]): any insert, seal or compaction
//!   makes every older entry stale, so a cache hit is always as fresh as a
//!   recomputation would have been at lookup time.
//!
//! The service also owns a **background maintenance thread** that seals
//! left-over growing rows and compacts undersized sealed segments off the
//! query path, so steady query traffic never pays for index builds.
//!
//! For corpora larger than one engine, the [`shard`] module scales *out*:
//! videos are placed onto N engine shards and a [`ShardRouter`]
//! scatter-gathers each query across them, pruning shards the plan provably
//! cannot match and merging per-shard answers bit-identically to a single
//! engine holding the whole corpus.
//!
//! ```
//! use lovo_core::{Lovo, LovoConfig, QuerySpec};
//! use lovo_serve::{QueryService, ServeConfig};
//! use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};
//! use std::sync::Arc;
//!
//! let videos = VideoCollection::generate(
//!     DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(60),
//! );
//! let engine = Arc::new(Lovo::build(&videos, LovoConfig::default()).unwrap());
//! let service = QueryService::start(engine, ServeConfig::default()).unwrap();
//!
//! let spec = QuerySpec::new("a red car driving in the center of the road");
//! let first = service.submit(spec.clone()).unwrap();
//! assert!(!first.result.frames.is_empty());
//! assert!(!first.cache_hit);
//!
//! // Same normalized plan, unchanged collection: served from the cache.
//! let second = service.submit(spec).unwrap();
//! assert!(second.cache_hit);
//! assert_eq!(second.result.frames, first.result.frames);
//! ```

#![warn(missing_docs)]

mod cache;
mod config;
mod service;
pub mod shard;

pub use config::ServeConfig;
pub use service::{QueryService, ServeStats, Served};
pub use shard::{
    partition_videos, CoarseRequest, CoarseResponse, EngineShard, HashPlacement, LocalShard,
    Placement, RerankRequest, RerankResponse, ShardConfig, ShardError, ShardOutage, ShardRouter,
    ShardStats, ShardedResult,
};

/// Errors surfaced by the query service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full: the service refused the submission
    /// instead of queueing unboundedly. Callers should back off and retry;
    /// the payload reports the configured depth that was exceeded.
    Rejected {
        /// The configured admission-queue depth that was full at submission.
        queue_depth: usize,
    },
    /// The service is shutting down and no longer accepts submissions.
    ShuttingDown,
    /// The engine failed while executing the query (message of the
    /// underlying [`lovo_core::LovoError`]; stringly typed so one failure can
    /// be fanned out to every waiter of a coalesced batch).
    Engine(String),
    /// The worker processing this submission disappeared without replying
    /// (it panicked mid-batch). The submission may or may not have executed.
    WorkerLost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected { queue_depth } => write!(
                f,
                "submission rejected: admission queue full (depth {queue_depth})"
            ),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Engine(msg) => write!(f, "engine error: {msg}"),
            ServeError::WorkerLost => write!(f, "worker lost before replying"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Result alias for service operations.
pub type Result<T> = std::result::Result<T, ServeError>;
