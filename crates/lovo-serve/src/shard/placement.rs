//! Video → shard placement.
//!
//! A [`Placement`] is the one piece of state the router and the ingest path
//! must agree on: ingest builds shard `s` from exactly the videos
//! [`Placement::shard_of`] assigns to `s` (see [`crate::shard::partition_videos`]),
//! and the router prunes and gathers under the same function. Placements are
//! pure functions of the video id, so the router can compute a predicate's
//! target shards without contacting any shard.

/// Assigns every video id to one of `shard_count` engine shards.
///
/// Implementations must be pure (the same id always maps to the same shard
/// while a deployment is live) and total (`shard_of` returns a value below
/// [`Placement::shard_count`] for every id). The trait exists so hash
/// placement can later be swapped for e.g. time-partitioned placement of
/// live camera feeds without touching the router.
pub trait Placement: Send + Sync {
    /// Number of shards ids are placed onto (at least 1).
    fn shard_count(&self) -> usize;

    /// The shard owning `video_id`; strictly less than
    /// [`Placement::shard_count`].
    fn shard_of(&self, video_id: u32) -> usize;
}

/// The default placement: a multiplicative hash of the video id, modulo the
/// shard count. Spreads consecutive camera ids evenly and is deterministic
/// across processes (no per-process seeding), so routers and ingest jobs on
/// different machines agree on ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPlacement {
    shards: usize,
}

impl HashPlacement {
    /// A placement over `shards` shards (floored at 1).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.max(1),
        }
    }
}

impl Placement for HashPlacement {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, video_id: u32) -> usize {
        // Fibonacci multiplicative hashing: one multiply spreads the id's
        // entropy into the high bits, which the modulo then samples. The
        // constant is 2^64 / φ, the standard choice.
        let mixed = u64::from(video_id).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (mixed % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_total_and_stable() {
        for shards in [1usize, 2, 4, 7] {
            let placement = HashPlacement::new(shards);
            assert_eq!(placement.shard_count(), shards);
            for id in 0..1000u32 {
                let shard = placement.shard_of(id);
                assert!(shard < shards);
                assert_eq!(shard, placement.shard_of(id), "placement must be pure");
            }
        }
    }

    #[test]
    fn zero_shards_floors_to_one() {
        let placement = HashPlacement::new(0);
        assert_eq!(placement.shard_count(), 1);
        assert_eq!(placement.shard_of(42), 0);
    }

    #[test]
    fn hashing_spreads_consecutive_ids() {
        let placement = HashPlacement::new(4);
        let mut counts = [0usize; 4];
        for id in 0..400u32 {
            if let Some(slot) = counts.get_mut(placement.shard_of(id)) {
                *slot += 1;
            }
        }
        // No shard should be starved or hoard everything under a
        // multiplicative hash of a contiguous id range.
        assert!(
            counts.iter().all(|&c| c > 40),
            "skewed placement: {counts:?}"
        );
    }
}
