//! The [`ShardRouter`]: compiles each spec once, prunes shards the plan
//! provably cannot match, scatter-gathers the two query stages across the
//! surviving shards, and merges per-shard answers into the single-engine
//! result order.

use super::engine::{CoarseRequest, CoarseResponse, EngineShard, RerankRequest};
use super::placement::Placement;
use super::{ShardError, ShardOutage};
use crate::cache::ResultCache;
use lovo_core::{
    assemble_unreranked, group_hits_by_frame, merge_coarse, merge_reranked, CoarseHit, FrameSeed,
    LovoConfig, QueryPlan, QueryPlanner, QueryResult, QuerySpec, QueryTimings, RankedObject,
    SearchStats,
};
use lovo_store::durability::FaultPlan;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Configuration of a [`ShardRouter`].
#[derive(Clone)]
pub struct ShardConfig {
    /// Gather worker threads per scatter (`0` = one per contacted shard).
    /// Workers claim shard legs off a shared counter — the same
    /// work-stealing shape the storage layer's segment fan-out uses.
    pub gather_threads: usize,
    /// Per-shard admission depth: at most this many queries may have a
    /// coarse leg in flight on one shard; the next is refused with
    /// [`ShardError::Rejected`].
    pub shard_queue_depth: usize,
    /// Capacity (entries) of each shard-local coarse-result cache, keyed by
    /// plan fingerprint + that shard's epoch. `0` disables caching.
    pub cache_capacity: usize,
    /// Capacity (entries) of the router-level merged-result cache, keyed by
    /// plan fingerprint + the epoch vector of the plan's target shards —
    /// a repeat query over unchanged shards skips the scatter (and the
    /// rerank) entirely. Degraded results are never cached. `0` disables it.
    pub result_cache_capacity: usize,
    /// Independently locked shards *within* each per-shard cache.
    pub cache_shards: usize,
    /// Deadline for each gather phase. A shard that has not answered in
    /// time is treated as an outage (degraded result), not an error. `None`
    /// waits indefinitely — only safe because every claimed leg sends
    /// exactly one message even when the shard panics.
    pub gather_timeout: Option<Duration>,
    /// Intra-query segment fan-out width forwarded to each shard's coarse
    /// stage (`0` = automatic on the shard).
    pub intra_query_threads: usize,
    /// Deterministic fault plan consulted at the `shard.gather` point
    /// (chaos tests); checks compile out of release builds without the
    /// `failpoints` feature, exactly like the storage layer's I/O points.
    pub faults: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for ShardConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardConfig")
            .field("gather_threads", &self.gather_threads)
            .field("shard_queue_depth", &self.shard_queue_depth)
            .field("cache_capacity", &self.cache_capacity)
            .field("result_cache_capacity", &self.result_cache_capacity)
            .field("cache_shards", &self.cache_shards)
            .field("gather_timeout", &self.gather_timeout)
            .field("intra_query_threads", &self.intra_query_threads)
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            gather_threads: 0,
            shard_queue_depth: 64,
            cache_capacity: 256,
            result_cache_capacity: 256,
            cache_shards: 4,
            gather_timeout: None,
            intra_query_threads: 0,
            faults: None,
        }
    }
}

impl ShardConfig {
    /// Builder-style gather-thread override (`0` = one per contacted shard).
    pub fn with_gather_threads(mut self, threads: usize) -> Self {
        self.gather_threads = threads;
        self
    }

    /// Builder-style per-shard admission-depth override.
    pub fn with_shard_queue_depth(mut self, depth: usize) -> Self {
        self.shard_queue_depth = depth;
        self
    }

    /// Builder-style per-shard cache-capacity override (`0` disables).
    pub fn with_cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Builder-style merged-result cache-capacity override (`0` disables).
    pub fn with_result_cache_capacity(mut self, entries: usize) -> Self {
        self.result_cache_capacity = entries;
        self
    }

    /// Builder-style gather-deadline override (`None` waits indefinitely).
    pub fn with_gather_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.gather_timeout = timeout;
        self
    }

    /// Builder-style intra-query fan-out override forwarded to shards.
    pub fn with_intra_query_threads(mut self, threads: usize) -> Self {
        self.intra_query_threads = threads;
        self
    }

    /// Builder-style fault-plan attachment (chaos tests).
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.shard_queue_depth == 0 {
            return Err("shard_queue_depth must be positive".into());
        }
        if self.cache_shards == 0 {
            return Err("cache_shards must be positive".into());
        }
        Ok(())
    }
}

/// Cumulative router counters (monotonic; snapshot via
/// [`ShardRouter::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Queries routed (including provably-empty short-circuits).
    pub queries: u64,
    /// Coarse legs dispatched to shards (cache misses that passed
    /// admission).
    pub coarse_requests: u64,
    /// Rerank legs dispatched to shards.
    pub rerank_requests: u64,
    /// Coarse legs answered from a shard-local cache.
    pub cache_hits: u64,
    /// Coarse legs that missed their shard-local cache.
    pub cache_misses: u64,
    /// Queries answered whole from the merged-result cache (no scatter ran).
    pub result_hits: u64,
    /// Queries that missed the merged-result cache and were scattered.
    pub result_misses: u64,
    /// Shards skipped by placement/zone pruning, summed over queries.
    pub shards_pruned: u64,
    /// Shard legs lost mid-gather (fault, panic, error, or timeout).
    pub outages: u64,
    /// Queries refused because a target shard's admission queue was full.
    pub rejected: u64,
}

impl ShardStats {
    /// Folds another snapshot into this one (routers behind a balancer
    /// aggregate through this).
    ///
    /// Every counter in the struct must be folded here — the workspace
    /// `stats-merge` lint checks the field list against this body.
    pub fn merge(&mut self, other: &ShardStats) {
        self.queries = self.queries.saturating_add(other.queries);
        self.coarse_requests = self.coarse_requests.saturating_add(other.coarse_requests);
        self.rerank_requests = self.rerank_requests.saturating_add(other.rerank_requests);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.result_hits = self.result_hits.saturating_add(other.result_hits);
        self.result_misses = self.result_misses.saturating_add(other.result_misses);
        self.shards_pruned = self.shards_pruned.saturating_add(other.shards_pruned);
        self.outages = self.outages.saturating_add(other.outages);
        self.rejected = self.rejected.saturating_add(other.rejected);
    }
}

#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    coarse_requests: AtomicU64,
    rerank_requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    shards_pruned: AtomicU64,
    outages: AtomicU64,
    rejected: AtomicU64,
}

/// One routed query's answer: the merged result plus the degradation
/// markers. `outages` empty means the answer is exact — bit-identical to a
/// single engine holding the whole corpus.
#[derive(Debug, Clone)]
pub struct ShardedResult {
    /// The merged query result (partial when `outages` is non-empty: exact
    /// for every surviving shard's videos).
    pub result: QueryResult,
    /// Shards lost mid-gather, with causes. Empty on a healthy gather.
    pub outages: Vec<ShardOutage>,
    /// Shards that contributed an answer (live or cached).
    pub shards_probed: usize,
    /// Shards skipped by placement/zone pruning.
    pub shards_pruned: usize,
    /// Coarse legs served from shard-local caches.
    pub coarse_cache_hits: usize,
    /// True when the whole answer came from the merged-result cache (no
    /// shard was contacted; `shards_probed` reports the original gather's
    /// fan-out).
    pub result_cache_hit: bool,
}

impl ShardedResult {
    /// True when at least one shard was lost and the result is partial.
    pub fn is_degraded(&self) -> bool {
        !self.outages.is_empty()
    }
}

/// One claimed scatter leg: the shard index and the work to run on it.
type Leg<R> = (usize, Box<dyn FnOnce() -> Result<R, String> + Send>);

/// What the merged-result cache stores: the full assembled answer of one
/// healthy (outage-free) gather, plus its fan-out accounting.
#[derive(Clone)]
struct CachedRouted {
    result: QueryResult,
    shards_probed: usize,
    shards_pruned: usize,
}

/// Folds the (shard index, epoch) pairs of a plan's target set into the
/// single `u64` the [`ResultCache`] keys on (FNV-style). Any shard entering
/// or leaving the target set, or any target's epoch moving, changes the fold
/// — so a stale entry can never be served as fresh.
fn fold_target_epochs(targets: &[usize], epochs: &[u64]) -> u64 {
    let mut fold = 0xcbf2_9ce4_8422_2325u64;
    for (&shard, &epoch) in targets.iter().zip(epochs) {
        for word in [shard as u64, epoch] {
            fold ^= word;
            fold = fold.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fold
}

/// Routes queries across N engine shards; see the module docs for the full
/// data flow. Cheap to share behind an `Arc`: all state is interior.
pub struct ShardRouter {
    shards: Vec<Arc<dyn EngineShard>>,
    placement: Arc<dyn Placement>,
    planner: QueryPlanner,
    config: ShardConfig,
    caches: Vec<ResultCache<CoarseResponse>>,
    results: ResultCache<CachedRouted>,
    in_flight: Arc<Vec<AtomicUsize>>,
    counters: Counters,
}

impl ShardRouter {
    /// Builds a router over `shards`, whose videos were placed by
    /// `placement` (shard counts must agree). `engine_config` must be the
    /// configuration the shard engines were built with: the router compiles
    /// every spec exactly once with an identical planner, so the plan a
    /// shard executes is the plan a single engine would have compiled.
    pub fn new(
        shards: Vec<Arc<dyn EngineShard>>,
        placement: Arc<dyn Placement>,
        engine_config: LovoConfig,
        config: ShardConfig,
    ) -> Result<Self, ShardError> {
        config.validate().map_err(ShardError::Config)?;
        if shards.is_empty() {
            return Err(ShardError::Config("at least one shard is required".into()));
        }
        if placement.shard_count() != shards.len() {
            return Err(ShardError::Config(format!(
                "placement places onto {} shards but {} were provided",
                placement.shard_count(),
                shards.len()
            )));
        }
        let caches = (0..shards.len())
            .map(|_| ResultCache::new(config.cache_capacity, config.cache_shards))
            .collect();
        let results = ResultCache::new(config.result_cache_capacity, config.cache_shards);
        let in_flight = Arc::new((0..shards.len()).map(|_| AtomicUsize::new(0)).collect());
        Ok(Self {
            shards,
            placement,
            planner: QueryPlanner::new(engine_config),
            config,
            caches,
            results,
            in_flight,
            counters: Counters::default(),
        })
    }

    /// Number of shards behind this router.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard ingest epochs, in shard order. The sharded generalization
    /// of a single engine's `ingest_epoch`: entry `s` moves exactly when
    /// shard `s`'s collection changes, so cache-freshness reasoning stays
    /// per-shard.
    pub fn epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|shard| shard.epoch()).collect()
    }

    /// Snapshot of the cumulative router counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            coarse_requests: self.counters.coarse_requests.load(Ordering::Relaxed),
            rerank_requests: self.counters.rerank_requests.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            result_hits: self.counters.result_hits.load(Ordering::Relaxed),
            result_misses: self.counters.result_misses.load(Ordering::Relaxed),
            shards_pruned: self.counters.shards_pruned.load(Ordering::Relaxed),
            outages: self.counters.outages.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
        }
    }

    /// Compiles the spec once and routes it; see [`ShardRouter::query_plan`].
    pub fn query_spec(&self, spec: &QuerySpec) -> Result<ShardedResult, ShardError> {
        let plan = self.planner.plan(spec);
        self.query_plan(&plan)
    }

    /// Routes an already-compiled plan: prune → scatter coarse → merge →
    /// scatter rerank → merge. Returns a degraded partial result (never an
    /// error) when shards are lost mid-gather; returns
    /// [`ShardError::Rejected`] without touching any shard when a target
    /// shard's admission queue is full.
    pub fn query_plan(&self, plan: &QueryPlan) -> Result<ShardedResult, ShardError> {
        self.counters.queries.fetch_add(1, Ordering::Relaxed);
        let mut timings = QueryTimings::default();

        // --- Prune: placement + stored-range checks, no shard searched. ---
        let (targets, pruned) = self.target_shards(plan);
        self.counters
            .shards_pruned
            .fetch_add(pruned as u64, Ordering::Relaxed);

        // --- Merged-result cache: a repeat plan over unchanged target
        // shards skips the scatter (and the rerank) entirely. Epochs are
        // read before any shard work, so an ingest landing mid-gather makes
        // the stored key conservatively stale, never falsely fresh. ---
        let fingerprint = plan.fingerprint();
        let target_epochs: Vec<u64> = targets
            .iter()
            .filter_map(|&index| self.shards.get(index).map(|shard| shard.epoch()))
            .collect();
        let epoch_key = fold_target_epochs(&targets, &target_epochs);
        if let Some(cached) = self.results.get(fingerprint, plan, epoch_key) {
            self.counters.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(ShardedResult {
                result: cached.result,
                outages: Vec::new(),
                shards_probed: cached.shards_probed,
                shards_pruned: cached.shards_pruned,
                coarse_cache_hits: 0,
                result_cache_hit: true,
            });
        }
        self.counters.result_misses.fetch_add(1, Ordering::Relaxed);

        // --- Scatter the coarse stage (cache, admission, gather). ---
        let coarse_start = Instant::now();
        let (responses, coarse_cache_hits, mut outages) = self.scatter_coarse(plan, &targets)?;
        timings.fast_search_seconds = coarse_start.elapsed().as_secs_f64();

        let shards_probed = responses.iter().filter(|r| r.is_some()).count();
        let mut search_stats = SearchStats::default();
        for response in responses.iter().flatten() {
            search_stats.merge(&response.stats);
        }
        search_stats.shards_probed = shards_probed;
        search_stats.shards_pruned = pruned;

        // --- Merge per-shard top-k into the single-engine candidate order
        // and group into candidate frames through the engine's own
        // implementation. ---
        let hit_lists: Vec<Vec<CoarseHit>> = responses
            .into_iter()
            .flatten()
            .map(|response| response.hits)
            .collect();
        let merged = merge_coarse(hit_lists, plan.fast_search_k);
        let fast_search_candidates = merged.len();
        let mut seeds = group_hits_by_frame(&merged);
        if plan.enable_rerank {
            seeds.truncate(plan.rerank_frames);
        }

        // --- Rerank on each frame's owning shard, merge globally. ---
        let rerank_start = Instant::now();
        let frames = if plan.enable_rerank {
            let lists = self.scatter_rerank(plan, &seeds, &mut outages);
            timings.rerank_seconds = rerank_start.elapsed().as_secs_f64();
            merge_reranked(lists, plan.output_frames)
        } else {
            assemble_unreranked(&seeds, plan.output_frames)
        };

        self.counters
            .outages
            .fetch_add(outages.len() as u64, Ordering::Relaxed);

        let result = QueryResult {
            query: plan.text.clone(),
            reranked_frames: if plan.enable_rerank { seeds.len() } else { 0 },
            frames,
            fast_search_candidates,
            timings,
            search_stats,
        };
        // Only healthy answers are cacheable: a degraded result is partial,
        // and serving it after the lost shard recovers would be a lie.
        if outages.is_empty() {
            self.results.put(
                fingerprint,
                plan,
                epoch_key,
                CachedRouted {
                    result: result.clone(),
                    shards_probed,
                    shards_pruned: pruned,
                },
            );
        }
        Ok(ShardedResult {
            result,
            outages,
            shards_probed,
            shards_pruned: pruned,
            coarse_cache_hits,
            result_cache_hit: false,
        })
    }

    /// The shards a plan must visit, and how many were pruned. A shard
    /// survives only if the plan's video predicate places at least one
    /// video onto it *and* the shard's stored range can contain one of
    /// them; unfiltered plans visit every non-empty shard. Provably-empty
    /// plans visit none.
    fn target_shards(&self, plan: &QueryPlan) -> (Vec<usize>, usize) {
        let total = self.shards.len();
        if plan.provably_empty {
            return (Vec::new(), total);
        }
        let videos = plan.patch_predicate.video_ids.as_ref();
        let mut targets = Vec::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let matched = match videos {
                Some(set) => {
                    set.iter().any(|&v| self.placement.shard_of(v) == index)
                        && match shard.video_range() {
                            Some((lo, hi)) => set.iter().any(|&v| lo <= v && v <= hi),
                            None => false,
                        }
                }
                None => shard.video_range().is_some(),
            };
            if matched {
                targets.push(index);
            }
        }
        let pruned = total - targets.len();
        (targets, pruned)
    }

    /// Coarse scatter: per-shard cache lookups, admission for the misses,
    /// then a work-stealing gather. Returns per-shard responses (indexed by
    /// shard), the cache-hit count, and the outages collected so far.
    #[allow(clippy::type_complexity)]
    fn scatter_coarse(
        &self,
        plan: &QueryPlan,
        targets: &[usize],
    ) -> Result<(Vec<Option<CoarseResponse>>, usize, Vec<ShardOutage>), ShardError> {
        let fingerprint = plan.fingerprint();
        let mut responses: Vec<Option<CoarseResponse>> =
            (0..self.shards.len()).map(|_| None).collect();
        let mut cache_hits = 0usize;
        let mut misses: Vec<usize> = Vec::new();

        for &index in targets {
            let Some((shard, cache)) = self.shards.get(index).zip(self.caches.get(index)) else {
                continue;
            };
            let epoch = shard.epoch();
            match cache.get(fingerprint, plan, epoch) {
                Some(hit) => {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    cache_hits += 1;
                    if let Some(slot) = responses.get_mut(index) {
                        *slot = Some(hit);
                    }
                }
                None => {
                    self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                    misses.push(index);
                }
            }
        }

        // Admission: acquire every missing shard's slot up front, releasing
        // whatever was already acquired on the first refusal — a rejected
        // query does zero shard work.
        let mut acquired: Vec<usize> = Vec::new();
        for &index in &misses {
            if self.try_admit(index) {
                acquired.push(index);
            } else {
                for &held in &acquired {
                    self.release(held);
                }
                self.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ShardError::Rejected {
                    shard: index,
                    queue_depth: self.config.shard_queue_depth,
                });
            }
        }

        let legs: Vec<Leg<CoarseResponse>> = misses
            .iter()
            .map(|&index| {
                let shard = self.shards.get(index).cloned();
                let faults = self.config.faults.clone();
                let request = CoarseRequest {
                    plan: plan.clone(),
                    intra_query_threads: self.config.intra_query_threads,
                };
                let work: Box<dyn FnOnce() -> Result<CoarseResponse, String> + Send> =
                    Box::new(move || {
                        if let Some(reason) = injected_outage(&faults, index) {
                            return Err(reason);
                        }
                        shard
                            .ok_or_else(|| "shard index out of range".to_string())?
                            .coarse(&request)
                    });
                (index, work)
            })
            .collect();
        self.counters
            .coarse_requests
            .fetch_add(legs.len() as u64, Ordering::Relaxed);

        let mut outages = Vec::new();
        let gathered = self.gather(legs, Some(Arc::clone(&self.in_flight)));
        let mut answered: Vec<bool> = vec![false; self.shards.len()];
        for (index, outcome) in gathered {
            if let Some(flag) = answered.get_mut(index) {
                *flag = true;
            }
            match outcome {
                Ok(response) => {
                    if let Some(cache) = self.caches.get(index) {
                        cache.put(fingerprint, plan, response.epoch, response.clone());
                    }
                    if let Some(slot) = responses.get_mut(index) {
                        *slot = Some(response);
                    }
                }
                Err(reason) => outages.push(ShardOutage {
                    shard: index,
                    reason,
                }),
            }
        }
        // Legs that never reported before the deadline are outages too; the
        // detached worker still releases the admission slot when the slow
        // shard eventually finishes — the shard really is still busy.
        for &index in &misses {
            if !answered.get(index).copied().unwrap_or(true) {
                outages.push(ShardOutage {
                    shard: index,
                    reason: "gather deadline exceeded".into(),
                });
            }
        }
        Ok((responses, cache_hits, outages))
    }

    /// Rerank scatter: partitions the surviving candidate frames by owning
    /// shard and gathers each shard's reranked list. A failed rerank leg
    /// degrades (its frames are dropped and an outage is recorded), exactly
    /// like a failed coarse leg.
    fn scatter_rerank(
        &self,
        plan: &QueryPlan,
        seeds: &[FrameSeed],
        outages: &mut Vec<ShardOutage>,
    ) -> Vec<Vec<RankedObject>> {
        let mut per_shard: HashMap<usize, Vec<FrameSeed>> = HashMap::new();
        for seed in seeds {
            per_shard
                .entry(self.placement.shard_of(seed.video_id))
                .or_default()
                .push(*seed);
        }
        if per_shard.is_empty() {
            return Vec::new();
        }
        let legs: Vec<Leg<Vec<RankedObject>>> = per_shard
            .into_iter()
            .map(|(index, frames)| {
                let shard = self.shards.get(index).cloned();
                let request = RerankRequest {
                    plan: plan.clone(),
                    frames,
                };
                let work: Box<dyn FnOnce() -> Result<Vec<RankedObject>, String> + Send> =
                    Box::new(move || {
                        shard
                            .ok_or_else(|| "shard index out of range".to_string())?
                            .rerank(&request)
                            .map(|response| response.frames)
                    });
                (index, work)
            })
            .collect();
        self.counters
            .rerank_requests
            .fetch_add(legs.len() as u64, Ordering::Relaxed);
        let expected: Vec<usize> = legs.iter().map(|(index, _)| *index).collect();
        let gathered = self.gather(legs, None);
        let mut answered: Vec<bool> = vec![false; self.shards.len()];
        let mut lists = Vec::new();
        for (index, outcome) in gathered {
            if let Some(flag) = answered.get_mut(index) {
                *flag = true;
            }
            match outcome {
                Ok(list) => lists.push(list),
                Err(reason) => outages.push(ShardOutage {
                    shard: index,
                    reason,
                }),
            }
        }
        for index in expected {
            if !answered.get(index).copied().unwrap_or(true) {
                outages.push(ShardOutage {
                    shard: index,
                    reason: "gather deadline exceeded".into(),
                });
            }
        }
        lists
    }

    /// Work-stealing gather: workers claim legs off a shared counter, run
    /// each under `catch_unwind`, and send exactly one message per claimed
    /// leg — so the receive loop below can never hang on a lost worker. A
    /// panicking leg reports an outage string instead of poisoning the
    /// router. When `permits` is given, the leg's shard slot is released
    /// after the leg settles (success, error, or panic alike).
    fn gather<R: Send + 'static>(
        &self,
        legs: Vec<Leg<R>>,
        permits: Option<Arc<Vec<AtomicUsize>>>,
    ) -> Vec<(usize, Result<R, String>)> {
        let total = legs.len();
        if total == 0 {
            return Vec::new();
        }
        let slots: Arc<Vec<Mutex<Option<Leg<R>>>>> =
            Arc::new(legs.into_iter().map(|leg| Mutex::new(Some(leg))).collect());
        let claim = Arc::new(AtomicUsize::new(0));
        let (sender, receiver) = mpsc::channel::<(usize, Result<R, String>)>();
        let workers = if self.config.gather_threads == 0 {
            total
        } else {
            self.config.gather_threads.clamp(1, total)
        };
        for _ in 0..workers {
            let slots = Arc::clone(&slots);
            let claim = Arc::clone(&claim);
            let sender = sender.clone();
            let permits = permits.clone();
            // Detached on purpose: a hung shard must not hang the router.
            // The worker's only side effects after the deadline passes are
            // releasing the admission slot and a send into a channel whose
            // receiver may be gone (ignored).
            std::thread::spawn(move || loop {
                let index = claim.fetch_add(1, Ordering::SeqCst);
                let Some(slot) = slots.get(index) else {
                    break;
                };
                let Some((shard_index, work)) =
                    slot.lock().unwrap_or_else(PoisonError::into_inner).take()
                else {
                    continue;
                };
                let outcome = catch_unwind(AssertUnwindSafe(work))
                    .unwrap_or_else(|_| Err("shard leg panicked mid-gather".into()));
                if let Some(permits) = &permits {
                    if let Some(permit) = permits.get(shard_index) {
                        permit.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                let _ = sender.send((shard_index, outcome));
            });
        }
        drop(sender);

        let mut gathered = Vec::with_capacity(total);
        match self.config.gather_timeout {
            None => {
                while let Ok(message) = receiver.recv() {
                    gathered.push(message);
                }
            }
            Some(timeout) => {
                let deadline = Instant::now() + timeout;
                while gathered.len() < total {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match receiver.recv_timeout(remaining) {
                        Ok(message) => gathered.push(message),
                        Err(_) => break,
                    }
                }
            }
        }
        gathered
    }

    fn try_admit(&self, index: usize) -> bool {
        let Some(slot) = self.in_flight.get(index) else {
            return false;
        };
        let depth = self.config.shard_queue_depth;
        slot.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |current| {
            (current < depth).then_some(current + 1)
        })
        .is_ok()
    }

    fn release(&self, index: usize) {
        if let Some(slot) = self.in_flight.get(index) {
            slot.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Consults the fault plan at the `shard.gather` point: first the
/// shard-targeted name (`shard.gather.<index>`, letting chaos tests pick
/// their victim deterministically), then the generic point. Compiled out of
/// release builds without the `failpoints` feature, like the storage
/// layer's I/O fault checks.
fn injected_outage(faults: &Option<Arc<FaultPlan>>, shard: usize) -> Option<String> {
    #[cfg(any(debug_assertions, feature = "failpoints"))]
    {
        use lovo_store::durability::points;
        if let Some(plan) = faults {
            let targeted = format!("{}.{shard}", points::SHARD_GATHER);
            if plan.take(&targeted).is_some() || plan.take(points::SHARD_GATHER).is_some() {
                return Some(format!("injected fault: {}", points::SHARD_GATHER));
            }
        }
        None
    }
    #[cfg(not(any(debug_assertions, feature = "failpoints")))]
    {
        let _ = (faults, shard);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stats_merge_covers_every_field() {
        // Every field distinct and nonzero on both sides, so a dropped line
        // in merge() fails an assertion (belt to the analyzer's braces).
        let mut a = ShardStats {
            queries: 1,
            coarse_requests: 2,
            rerank_requests: 3,
            cache_hits: 4,
            cache_misses: 5,
            result_hits: 6,
            result_misses: 7,
            shards_pruned: 8,
            outages: 9,
            rejected: 10,
        };
        let b = ShardStats {
            queries: 10,
            coarse_requests: 20,
            rerank_requests: 30,
            cache_hits: 40,
            cache_misses: 50,
            result_hits: 60,
            result_misses: 70,
            shards_pruned: 80,
            outages: 90,
            rejected: 100,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ShardStats {
                queries: 11,
                coarse_requests: 22,
                rerank_requests: 33,
                cache_hits: 44,
                cache_misses: 55,
                result_hits: 66,
                result_misses: 77,
                shards_pruned: 88,
                outages: 99,
                rejected: 110,
            }
        );
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = ShardStats {
            queries: u64::MAX,
            ..ShardStats::default()
        };
        a.merge(&ShardStats {
            queries: 5,
            ..ShardStats::default()
        });
        assert_eq!(a.queries, u64::MAX);
    }

    #[test]
    fn config_validation_rejects_zeroed_knobs() {
        assert!(ShardConfig::default().validate().is_ok());
        assert!(ShardConfig::default()
            .with_shard_queue_depth(0)
            .validate()
            .is_err());
        // Zero cache capacity is legal: it disables the per-shard caches.
        assert!(ShardConfig::default()
            .with_cache_capacity(0)
            .validate()
            .is_ok());
    }
}
