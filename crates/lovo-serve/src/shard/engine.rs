//! The router ↔ shard interface: serializable messages and the
//! [`EngineShard`] trait, plus the in-process [`LocalShard`] implementation.
//!
//! The router addresses a shard only through [`EngineShard`], whose requests
//! and responses are plain serializable values (the compiled
//! [`QueryPlan`] travels *in* the message — shards never re-plan), and whose
//! error channel is a string. Nothing in the contract assumes shared memory,
//! so a remote transport (RPC over the same message types) can replace
//! [`LocalShard`] without touching the router.

use lovo_core::{CoarseHit, FrameSeed, Lovo, QueryPlan, RankedObject, SearchStats};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Coarse-stage request: run the (router-compiled) plan's encode + prune +
/// fast-search stages against the shard's local segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseRequest {
    /// The compiled plan, shipped as data (compiled once at the router).
    pub plan: QueryPlan,
    /// Intra-query segment fan-out width on the shard (`0` = automatic).
    pub intra_query_threads: usize,
}

/// Coarse-stage response: the shard's local top-k candidates, in the global
/// candidate order (score desc, patch id asc), plus the work counters and
/// the shard epoch the answer was computed under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseResponse {
    /// The shard's local top-`fast_search_k` candidate patches, best-first.
    pub hits: Vec<CoarseHit>,
    /// Work counters of the shard-local search.
    pub stats: SearchStats,
    /// The shard's ingest epoch, read *before* the search ran — so a cache
    /// entry keyed on it is conservatively stale, never falsely fresh.
    pub epoch: u64,
}

/// Rerank-stage request: re-score these candidate frames (all owned by the
/// addressed shard) with the cross-modality model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RerankRequest {
    /// The compiled plan (the shard re-encodes the text locally — encoding
    /// is content-deterministic, so every shard derives the same
    /// constraints the router's planner saw).
    pub plan: QueryPlan,
    /// The candidate frames assigned to this shard, in global rank order.
    pub frames: Vec<FrameSeed>,
}

/// Rerank-stage response: the shard's reranked frames, sorted by the global
/// rerank order but untruncated — the router applies the output budget
/// after merging every shard's list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RerankResponse {
    /// Reranked frames, sorted by `lovo_core::reranked_order`.
    pub frames: Vec<RankedObject>,
}

/// One engine shard as the router sees it. Implementations must be cheap to
/// call concurrently (the router scatters to many shards at once) and must
/// report errors as values — a shard that panics instead is treated as an
/// outage by the gather, not an excuse to take the router down.
pub trait EngineShard: Send + Sync {
    /// The shard's current ingest epoch (cache-invalidation token).
    fn epoch(&self) -> u64;

    /// Inclusive video-id range of the shard's stored corpus, or `None`
    /// while the shard is empty. The router prunes shards whose range
    /// cannot intersect a plan's video predicate.
    fn video_range(&self) -> Option<(u32, u32)>;

    /// Runs the coarse stage locally. Errors come back as display strings
    /// (message-shaped: a remote shard would ship exactly this).
    fn coarse(&self, request: &CoarseRequest) -> Result<CoarseResponse, String>;

    /// Runs the rerank stage locally over the router-assigned frames.
    fn rerank(&self, request: &RerankRequest) -> Result<RerankResponse, String>;
}

/// An in-process shard: one [`Lovo`] engine holding this shard's videos.
pub struct LocalShard {
    engine: Arc<Lovo>,
}

impl LocalShard {
    /// Wraps an engine built over this shard's video partition (see
    /// [`crate::shard::partition_videos`]).
    pub fn new(engine: Arc<Lovo>) -> Self {
        Self { engine }
    }

    /// The wrapped engine (tests ingest through this).
    pub fn engine(&self) -> &Arc<Lovo> {
        &self.engine
    }
}

impl EngineShard for LocalShard {
    fn epoch(&self) -> u64 {
        self.engine.ingest_epoch()
    }

    fn video_range(&self) -> Option<(u32, u32)> {
        self.engine.video_id_range()
    }

    fn coarse(&self, request: &CoarseRequest) -> Result<CoarseResponse, String> {
        // Epoch before the search: if an ingest lands mid-search the
        // response is stamped with the pre-ingest epoch and any cache entry
        // keyed on it goes stale immediately — conservative, never wrong.
        let epoch = self.engine.ingest_epoch();
        let (hits, stats) = self
            .engine
            .coarse_plan(&request.plan, request.intra_query_threads)
            .map_err(|e| e.to_string())?;
        Ok(CoarseResponse { hits, stats, epoch })
    }

    fn rerank(&self, request: &RerankRequest) -> Result<RerankResponse, String> {
        let frames = self
            .engine
            .rerank_plan(&request.plan, &request.frames)
            .map_err(|e| e.to_string())?;
        Ok(RerankResponse { frames })
    }
}
