//! Sharded scatter-gather serving: N engine shards behind one router.
//!
//! `lovo-serve`'s [`crate::QueryService`] scales one engine to many clients;
//! this module scales the *corpus* past one engine. Videos are placed onto N
//! engine shards by a pluggable [`Placement`] (the default hashes the video
//! id), and a [`ShardRouter`] answers each [`lovo_core::QuerySpec`] by:
//!
//! 1. **compiling the plan once** (the same [`lovo_core::QueryPlanner`] the
//!    engines use), then **pruning** shards whose placement provably cannot
//!    match the plan's video predicate — the zone-map idea lifted one level
//!    up, recorded as `shards_pruned` in the merged
//!    [`lovo_core::SearchStats`];
//! 2. **scattering** the coarse stage to the surviving shards (claim-counter
//!    work stealing, the same pool shape the storage layer's segment fan-out
//!    uses) with per-shard admission control
//!    ([`ShardError::Rejected`]) and per-shard coarse-result caches keyed by
//!    plan fingerprint + shard epoch (a router-level merged-result cache,
//!    keyed by fingerprint + the target shards' epoch *vector*, absorbs
//!    whole repeat queries before any scatter);
//! 3. **merging** per-shard top-k under the same score-desc / id-asc total
//!    order the segment merge uses, grouping candidate frames through the
//!    engine's own `group_hits_by_frame`, and **gathering** the rerank stage
//!    from each frame's owning shard — so the sharded answer is
//!    *bit-identical* to what a single engine holding the whole corpus
//!    would return (`tests/shard_equivalence.rs` proves this
//!    property across shard counts);
//! 4. **degrading instead of failing**: a shard lost mid-gather (fault,
//!    panic, or timeout) yields a partial result carrying a [`ShardOutage`]
//!    marker for exactly that shard — the router never hangs and never
//!    panics (`tests/shard_chaos.rs`).
//!
//! Shards run in-process here ([`LocalShard`] wraps an `Arc<Lovo>`), but the
//! router speaks to them only through the serializable request/response
//! messages of [`EngineShard`], so a remote transport can slot in without
//! touching the router.

mod engine;
mod placement;
mod router;

pub use engine::{
    CoarseRequest, CoarseResponse, EngineShard, LocalShard, RerankRequest, RerankResponse,
};
pub use placement::{HashPlacement, Placement};
pub use router::{ShardConfig, ShardRouter, ShardStats, ShardedResult};

/// Errors surfaced by the shard router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// One target shard's admission slots were all in flight: the router
    /// refused the query instead of queueing unboundedly — the shard-level
    /// analogue of [`crate::ServeError::Rejected`].
    Rejected {
        /// The shard whose admission queue was full.
        shard: usize,
        /// The configured per-shard in-flight depth that was exceeded.
        queue_depth: usize,
    },
    /// The router-side configuration was invalid (shard count / placement
    /// mismatch, zeroed knobs).
    Config(String),
    /// The router itself failed before any shard was contacted (e.g. the
    /// merge stage could not run). Per-shard failures do *not* produce this
    /// — they degrade into [`ShardOutage`] markers on a partial result.
    Internal(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Rejected { shard, queue_depth } => write!(
                f,
                "shard {shard} rejected the query: admission queue full (depth {queue_depth})"
            ),
            ShardError::Config(msg) => write!(f, "shard configuration error: {msg}"),
            ShardError::Internal(msg) => write!(f, "shard router error: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Marker describing one shard lost during a gather. Carried on the
/// degraded [`ShardedResult`] instead of failing the whole query: the
/// surviving shards' answers are still exact for *their* videos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutage {
    /// Index of the shard that was lost.
    pub shard: usize,
    /// Human-readable cause (engine error, injected fault, panic, timeout).
    pub reason: String,
}

impl std::fmt::Display for ShardOutage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} lost mid-gather: {}", self.shard, self.reason)
    }
}

/// Partitions a video collection into per-shard sub-collections under a
/// placement: sub-collection `s` holds exactly the videos `placement`
/// assigns to shard `s`, in their original order. Build each shard's engine
/// from its sub-collection and the sharded corpus is a disjoint cover of
/// the original — the precondition for the router's bit-identical merge.
pub fn partition_videos(
    videos: &lovo_video::VideoCollection,
    placement: &dyn Placement,
) -> Vec<lovo_video::VideoCollection> {
    let mut parts: Vec<lovo_video::VideoCollection> = (0..placement.shard_count())
        .map(|_| lovo_video::VideoCollection {
            config: videos.config.clone(),
            videos: Vec::new(),
        })
        .collect();
    for video in &videos.videos {
        let shard = placement.shard_of(video.id);
        if let Some(part) = parts.get_mut(shard) {
            part.videos.push(video.clone());
        }
    }
    parts
}
