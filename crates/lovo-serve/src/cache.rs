//! The sharded, epoch-invalidated result cache.
//!
//! Entries are keyed by the plan fingerprint
//! ([`lovo_core::QueryPlan::fingerprint`]) — text, effective `k`, rerank and
//! output budgets, and the *flattened* predicate — so syntactically different
//! specs that normalize to the same plan share one entry. Every entry is
//! stamped with the ingest epoch it was computed under; a lookup whose
//! current epoch differs evicts the entry and reports a miss, which is what
//! makes stale hits across an ingest impossible: the epoch is bumped by every
//! insert, seal and compaction *before* the mutation becomes searchable to a
//! later query.

use lovo_core::{QueryPlan, QueryResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The result-relevant identity of a plan, kept alongside each entry to turn
/// a (astronomically unlikely) 64-bit fingerprint collision into a miss
/// instead of a wrong answer. Field-for-field what
/// [`QueryPlan::fingerprint`] hashes.
#[derive(Debug, Clone)]
struct PlanKey {
    text: String,
    fast_search_k: usize,
    enable_rerank: bool,
    rerank_frames: usize,
    output_frames: usize,
    provably_empty: bool,
    predicate: lovo_core::PatchPredicate,
}

impl PlanKey {
    fn of(plan: &QueryPlan) -> Self {
        Self {
            text: plan.text.clone(),
            fast_search_k: plan.fast_search_k,
            enable_rerank: plan.enable_rerank,
            rerank_frames: plan.rerank_frames,
            output_frames: plan.output_frames,
            provably_empty: plan.provably_empty,
            predicate: plan.patch_predicate.clone(),
        }
    }

    fn matches(&self, plan: &QueryPlan) -> bool {
        self.text == plan.text
            && self.fast_search_k == plan.fast_search_k
            && self.enable_rerank == plan.enable_rerank
            && self.rerank_frames == plan.rerank_frames
            && self.output_frames == plan.output_frames
            && self.provably_empty == plan.provably_empty
            && self.predicate == plan.patch_predicate
    }
}

struct Entry<V> {
    key: PlanKey,
    epoch: u64,
    result: V,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<u64, Entry<V>>,
    tick: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            tick: 0,
        }
    }
}

/// Sharded LRU of cached values keyed by plan fingerprint, invalidated by
/// ingest epoch. Generic over the cached value so the serving layer stores
/// whole [`QueryResult`]s while the shard router's per-shard caches store
/// coarse-stage responses.
pub(crate) struct ResultCache<V: Clone = QueryResult> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
    stale_evictions: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// A cache of `capacity` total entries over `shards` independently locked
    /// shards. `capacity == 0` disables the cache (every lookup misses,
    /// every insert is dropped).
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(shards),
            stale_evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Shard<V>> {
        // lint:allow(index, in bounds by construction: fingerprint % len with len >= 1)
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }

    /// Looks up the plan's cached result, valid only at `epoch`. An entry
    /// stamped with any other epoch is evicted on sight (the collection has
    /// changed since it was computed) and the lookup misses.
    pub(crate) fn get(&self, fingerprint: u64, plan: &QueryPlan, epoch: u64) -> Option<V> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&fingerprint) {
            Some(entry) if entry.epoch == epoch && entry.key.matches(plan) => {
                entry.last_used = tick;
                Some(entry.result.clone())
            }
            Some(entry) if entry.epoch != epoch => {
                shard.map.remove(&fingerprint);
                self.stale_evictions.fetch_add(1, Ordering::Relaxed);
                None
            }
            // Fingerprint collision with a different plan: leave the resident
            // entry alone, just miss.
            _ => None,
        }
    }

    /// Inserts a result computed at `epoch`, evicting the shard's
    /// least-recently-used entry when full. Eviction scans the shard
    /// linearly — shards are small (capacity / shard count), so this stays
    /// cheap without an intrusive list.
    pub(crate) fn put(&self, fingerprint: u64, plan: &QueryPlan, epoch: u64, result: V) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self
            .shard(fingerprint)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&fingerprint) {
            if let Some((&lru, _)) = shard.map.iter().min_by_key(|(_, entry)| entry.last_used) {
                shard.map.remove(&lru);
            }
        }
        shard.map.insert(
            fingerprint,
            Entry {
                key: PlanKey::of(plan),
                epoch,
                result,
                last_used: tick,
            },
        );
    }

    /// Number of entries currently cached (across all shards).
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Lifetime count of entries evicted because their epoch went stale.
    pub(crate) fn stale_evictions(&self) -> u64 {
        self.stale_evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_core::{LovoConfig, QueryPlanner, QuerySpec};

    fn plan(text: &str) -> QueryPlan {
        QueryPlanner::new(LovoConfig::default()).plan(&QuerySpec::new(text))
    }

    fn result(text: &str) -> QueryResult {
        QueryResult {
            query: text.to_string(),
            frames: Vec::new(),
            fast_search_candidates: 7,
            reranked_frames: 0,
            timings: Default::default(),
            search_stats: Default::default(),
        }
    }

    #[test]
    fn hit_requires_matching_epoch() {
        let cache = ResultCache::new(16, 2);
        let p = plan("a red car");
        let fp = p.fingerprint();
        cache.put(fp, &p, 1, result("a red car"));
        assert!(cache.get(fp, &p, 1).is_some());
        // Epoch moved on: the entry is stale, evicted, and later lookups at
        // the old epoch miss too (the entry is gone).
        assert!(cache.get(fp, &p, 2).is_none());
        assert_eq!(cache.stale_evictions(), 1);
        assert!(cache.get(fp, &p, 1).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_shard() {
        // One shard so the eviction order is fully observable.
        let cache = ResultCache::new(2, 1);
        let plans: Vec<QueryPlan> = ["a", "b", "c"].iter().map(|t| plan(t)).collect();
        cache.put(plans[0].fingerprint(), &plans[0], 1, result("a"));
        cache.put(plans[1].fingerprint(), &plans[1], 1, result("b"));
        // Touch "a" so "b" is the LRU when "c" arrives.
        assert!(cache.get(plans[0].fingerprint(), &plans[0], 1).is_some());
        cache.put(plans[2].fingerprint(), &plans[2], 1, result("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(plans[0].fingerprint(), &plans[0], 1).is_some());
        assert!(cache.get(plans[1].fingerprint(), &plans[1], 1).is_none());
        assert!(cache.get(plans[2].fingerprint(), &plans[2], 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ResultCache::new(0, 4);
        let p = plan("a bus");
        cache.put(p.fingerprint(), &p, 1, result("a bus"));
        assert!(cache.get(p.fingerprint(), &p, 1).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn fingerprint_collision_misses_instead_of_lying() {
        let cache = ResultCache::new(16, 1);
        let a = plan("a red car");
        let b = plan("a blue bus");
        // Force b to look up under a's fingerprint slot: the stored key
        // mismatch must make it miss, not return a's result.
        cache.put(a.fingerprint(), &a, 1, result("a red car"));
        assert!(cache.get(a.fingerprint(), &b, 1).is_none());
        // And the resident entry survives.
        assert!(cache.get(a.fingerprint(), &a, 1).is_some());
    }
}
