//! The query service: admission-controlled worker pool, micro-batch
//! coalescing, result caching, and background maintenance.

use crate::cache::ResultCache;
use crate::{Result, ServeConfig, ServeError};
use lovo_core::{Lovo, QueryPlan, QueryResult, QuerySpec};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One answered submission.
#[derive(Debug, Clone)]
pub struct Served {
    /// The query result. `result.timings.queue_seconds` carries this
    /// submission's serve-side wait (admission queue + batch window); for a
    /// cache hit the remaining stage timings are those of the execution that
    /// originally filled the entry.
    pub result: QueryResult,
    /// True when the result came from the plan-keyed cache (no engine work).
    pub cache_hit: bool,
    /// Number of *other* submissions answered by the same engine pass —
    /// nonzero only when micro-batching coalesced concurrent arrivals.
    /// Zero for cache hits and solo executions.
    pub coalesced_with: usize,
}

/// Point-in-time service counters (all lifetime totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Submissions accepted (queued or served from cache).
    pub submitted: u64,
    /// Submissions refused with [`ServeError::Rejected`].
    pub rejected: u64,
    /// Submissions answered from the result cache.
    pub cache_hits: u64,
    /// Entries evicted because their ingest epoch went stale.
    pub cache_stale_evictions: u64,
    /// Engine passes executed (each covers one micro-batch).
    pub engine_batches: u64,
    /// Distinct plans executed by the engine across all passes.
    pub engine_queries: u64,
    /// Submissions that shared an engine pass with at least one other
    /// submission (batched or deduplicated against an identical plan).
    pub coalesced: u64,
    /// Engine passes that panicked. The worker survives (its batch's waiters
    /// see [`ServeError::WorkerLost`]); a nonzero value here means the
    /// engine has a bug worth investigating.
    pub worker_panics: u64,
    /// Maintenance ticks run.
    pub maintenance_ticks: u64,
    /// Growing-segment seals performed by maintenance.
    pub maintenance_seals: u64,
    /// Sealed segments merged away by maintenance compaction.
    pub maintenance_segments_merged: u64,
    /// Maintenance ticks in which a seal or compaction failed (typically
    /// durable-store I/O: a full disk, a yanked volume). The thread never
    /// dies on these — it backs off exponentially (capped) and retries, so a
    /// transient fault costs delayed maintenance, not a restart. A steadily
    /// climbing value means the store's volume needs attention.
    pub maintenance_io_errors: u64,
}

impl ServeStats {
    /// Folds another snapshot into this one, field by field, yielding the
    /// combined lifetime totals (e.g. across replicas of one service).
    ///
    /// Every counter in the struct must be folded here — the workspace
    /// `stats-merge` lint checks the field list against this body.
    pub fn merge(&mut self, other: &ServeStats) {
        self.submitted = self.submitted.saturating_add(other.submitted);
        self.rejected = self.rejected.saturating_add(other.rejected);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_stale_evictions = self
            .cache_stale_evictions
            .saturating_add(other.cache_stale_evictions);
        self.engine_batches = self.engine_batches.saturating_add(other.engine_batches);
        self.engine_queries = self.engine_queries.saturating_add(other.engine_queries);
        self.coalesced = self.coalesced.saturating_add(other.coalesced);
        self.worker_panics = self.worker_panics.saturating_add(other.worker_panics);
        self.maintenance_ticks = self
            .maintenance_ticks
            .saturating_add(other.maintenance_ticks);
        self.maintenance_seals = self
            .maintenance_seals
            .saturating_add(other.maintenance_seals);
        self.maintenance_segments_merged = self
            .maintenance_segments_merged
            .saturating_add(other.maintenance_segments_merged);
        self.maintenance_io_errors = self
            .maintenance_io_errors
            .saturating_add(other.maintenance_io_errors);
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
    engine_batches: AtomicU64,
    engine_queries: AtomicU64,
    coalesced: AtomicU64,
    worker_panics: AtomicU64,
    maintenance_ticks: AtomicU64,
    maintenance_seals: AtomicU64,
    maintenance_segments_merged: AtomicU64,
    maintenance_io_errors: AtomicU64,
}

/// One queued submission: its compiled plan, cache identity, arrival time,
/// and the channel its waiter blocks on.
struct Pending {
    plan: QueryPlan,
    fingerprint: u64,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Served>>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    engine: Arc<Lovo>,
    config: ServeConfig,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    cache: ResultCache,
    counters: Counters,
    /// Workers currently inside an engine pass. Sizes the automatic
    /// intra-query fan-out donation: idle capacity is divided among the busy
    /// passes, so a lone query on an idle service gets the whole machine
    /// while a saturated pool keeps each pass on one thread.
    busy_workers: AtomicUsize,
}

impl Shared {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A concurrent query front end over an [`Arc<Lovo>`] engine.
///
/// Submissions go through [`QueryService::submit`]; the service owns its
/// worker threads (and optionally a maintenance thread) and joins them on
/// drop, draining any queued submissions first. See the crate docs for the
/// serving model and a usage example.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    maintenance: Option<MaintenanceHandle>,
}

struct MaintenanceHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: std::thread::JoinHandle<()>,
}

impl QueryService {
    /// Starts the service: spawns the worker pool (and the maintenance
    /// thread when configured) over the shared engine. Fails on an invalid
    /// configuration.
    pub fn start(engine: Arc<Lovo>, config: ServeConfig) -> Result<Self> {
        config.validate().map_err(ServeError::Engine)?;
        if config.warmup_on_start {
            // Pre-fault mapped sealed segments before the first query can
            // hit a demand-paging stall; advisory, so nothing to surface.
            let _ = engine.warmup();
        }
        let shared = Arc::new(Shared {
            cache: ResultCache::new(config.cache_capacity, config.cache_shards),
            engine: Arc::clone(&engine),
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            counters: Counters::default(),
            busy_workers: AtomicUsize::new(0),
        });
        // A failed spawn must not leak the threads already started: tell
        // them to shut down and join them before surfacing the error.
        let abort_spawn = |workers: Vec<std::thread::JoinHandle<()>>, err: std::io::Error| {
            shared.lock_state().shutdown = true;
            shared.work_ready.notify_all();
            for worker in workers {
                let _ = worker.join();
            }
            ServeError::Engine(format!("failed to spawn service thread: {err}"))
        };
        let mut workers = Vec::with_capacity(config.workers);
        for worker in 0..config.workers {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("lovo-serve-worker-{worker}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(err) => return Err(abort_spawn(workers, err)),
            }
        }
        let maintenance = match config.maintenance_interval {
            Some(interval) => {
                let stop = Arc::new((Mutex::new(false), Condvar::new()));
                let thread_shared = Arc::clone(&shared);
                let thread_stop = Arc::clone(&stop);
                let spawned = std::thread::Builder::new()
                    .name("lovo-serve-maintenance".into())
                    .spawn(move || maintenance_loop(&thread_shared, &thread_stop, interval));
                match spawned {
                    Ok(thread) => Some(MaintenanceHandle { stop, thread }),
                    Err(err) => return Err(abort_spawn(workers, err)),
                }
            }
            None => None,
        };
        Ok(Self {
            shared,
            workers,
            maintenance,
        })
    }

    /// Submits one query and blocks until it is answered.
    ///
    /// The spec is compiled once (yielding the cache fingerprint); a fresh
    /// cache hit returns without touching the queue. Otherwise the
    /// submission must clear admission control — a full queue returns
    /// [`ServeError::Rejected`] immediately — and is then picked up by a
    /// worker, possibly coalesced with concurrent submissions into one
    /// engine pass. The returned [`Served`] says which path answered it.
    ///
    /// ```
    /// use lovo_core::{Lovo, LovoConfig, QuerySpec};
    /// use lovo_serve::{QueryService, ServeConfig};
    /// use lovo_video::{DatasetConfig, DatasetKind, QueryPredicate, VideoCollection};
    /// use std::sync::Arc;
    ///
    /// let videos = VideoCollection::generate(
    ///     DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(60),
    /// );
    /// let engine = Arc::new(Lovo::build(&videos, LovoConfig::default()).unwrap());
    /// let service = QueryService::start(engine, ServeConfig::default()).unwrap();
    ///
    /// // Predicates ride along: this searches only video 0's footage.
    /// let spec = QuerySpec::new("a bus driving on the road")
    ///     .with_predicate(QueryPredicate::videos([0]));
    /// let served = service.submit(spec).unwrap();
    /// assert!(served.result.frames.iter().all(|frame| frame.video_id == 0));
    /// // The serve-side wait is stamped into the timings breakdown.
    /// assert!(served.result.breakdown().starts_with("wait"));
    /// ```
    pub fn submit(&self, spec: QuerySpec) -> Result<Served> {
        let submitted = Instant::now();
        let plan = self.shared.engine.plan(&spec);
        let fingerprint = plan.fingerprint();
        let epoch = self.shared.engine.ingest_epoch();
        if let Some(mut result) = self.shared.cache.get(fingerprint, &plan, epoch) {
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            self.shared
                .counters
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
            result.timings.queue_seconds = submitted.elapsed().as_secs_f64();
            return Ok(Served {
                result,
                cache_hit: true,
                coalesced_with: 0,
            });
        }

        let (reply, response) = mpsc::channel();
        {
            let mut state = self.shared.lock_state();
            if state.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() >= self.shared.config.queue_depth {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Rejected {
                    queue_depth: self.shared.config.queue_depth,
                });
            }
            self.shared
                .counters
                .submitted
                .fetch_add(1, Ordering::Relaxed);
            state.queue.push_back(Pending {
                plan,
                fingerprint,
                enqueued: submitted,
                reply,
            });
        }
        self.shared.work_ready.notify_one();
        response.recv().map_err(|_| ServeError::WorkerLost)?
    }

    /// The engine this service fronts.
    pub fn engine(&self) -> &Arc<Lovo> {
        &self.shared.engine
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.config
    }

    /// A snapshot of the lifetime service counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_stale_evictions: self.shared.cache.stale_evictions(),
            engine_batches: c.engine_batches.load(Ordering::Relaxed),
            engine_queries: c.engine_queries.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            maintenance_ticks: c.maintenance_ticks.load(Ordering::Relaxed),
            maintenance_seals: c.maintenance_seals.load(Ordering::Relaxed),
            maintenance_segments_merged: c.maintenance_segments_merged.load(Ordering::Relaxed),
            maintenance_io_errors: c.maintenance_io_errors.load(Ordering::Relaxed),
        }
    }

    /// Number of entries currently in the result cache.
    pub fn cached_results(&self) -> usize {
        self.shared.cache.len()
    }

    /// Total bytes of mapped sealed segments behind this service (0 on the
    /// heap read path). Point-in-time storage gauges rather than
    /// [`ServeStats`] counters: they describe the engine's current mappings,
    /// not accumulated service activity.
    pub fn mapped_bytes(&self) -> usize {
        self.shared.engine.mapped_bytes()
    }

    /// Bytes of mapped sealed segments currently resident in page cache —
    /// how warm the mapped corpus is right now. Falls under memory pressure
    /// as the kernel evicts cold segment pages (the degradation mode that
    /// keeps larger-than-RAM corpora serving).
    pub fn resident_bytes(&self) -> usize {
        self.shared.engine.resident_bytes()
    }
}

impl Drop for QueryService {
    /// Graceful shutdown: stop admitting, let the workers drain every queued
    /// submission, then join all service-owned threads.
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(maintenance) = self.maintenance.take() {
            {
                let (flag, signal) = &*maintenance.stop;
                *flag.lock().unwrap_or_else(PoisonError::into_inner) = true;
                signal.notify_all();
            }
            let _ = maintenance.thread.join();
        }
    }
}

/// Worker body: wait for work, assemble a micro-batch, execute, fan out.
fn worker_loop(shared: &Shared) {
    loop {
        let batch = match next_batch(shared) {
            Some(batch) => batch,
            None => return, // shutdown with an empty queue
        };
        // A panicking engine pass must not kill the worker: the pool is
        // fixed-size, so a dead worker would (once all are dead) leave
        // queued waiters blocked forever. Catching the unwind drops the
        // batch's un-replied senders — those waiters get `WorkerLost` — and
        // the worker lives on to serve the next batch. The busy counter is
        // decremented on the panic path too, so a crashed pass never
        // permanently shrinks the idle capacity donated to later queries.
        shared.busy_workers.fetch_add(1, Ordering::Relaxed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_batch(shared, batch)
        }));
        shared.busy_workers.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            shared
                .counters
                .worker_panics
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Blocks until at least one submission is available, then keeps the batch
/// open for the configured window (or until `max_batch`) so concurrent
/// arrivals coalesce. Returns `None` on shutdown once the queue is empty —
/// queued submissions are always drained before workers exit.
fn next_batch(shared: &Shared) -> Option<Vec<Pending>> {
    let mut state = shared.lock_state();
    loop {
        if let Some(first) = state.queue.pop_front() {
            let mut batch = vec![first];
            let window = shared.config.batch_window;
            let max_batch = shared.config.max_batch;
            if !window.is_zero() && max_batch > 1 {
                let deadline = Instant::now() + window;
                loop {
                    while batch.len() < max_batch {
                        match state.queue.pop_front() {
                            Some(pending) => batch.push(pending),
                            None => break,
                        }
                    }
                    if batch.len() >= max_batch || state.shutdown {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (next, _) = shared
                        .work_ready
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    state = next;
                }
            }
            return Some(batch);
        }
        if state.shutdown {
            return None;
        }
        state = shared
            .work_ready
            .wait(state)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Executes one micro-batch: dedupes identical plans, re-checks the cache,
/// runs the distinct remainder as one engine pass, fills the cache, and
/// replies to every waiter with its own wait time stamped in.
fn execute_batch(shared: &Shared, batch: Vec<Pending>) {
    // The epoch is read BEFORE executing: a mutation that lands mid-pass
    // bumps the live epoch past this stamp, so the entries filled below are
    // already stale for later lookups — conservative, never wrong.
    let epoch = shared.engine.ingest_epoch();

    // Group submissions by fingerprint; each group executes (or hits) once.
    // Each group carries its exemplar plan alongside the member list so the
    // later stages never index into it.
    let mut groups: Vec<(u64, QueryPlan, Vec<Pending>)> = Vec::new();
    for pending in batch {
        match groups.iter_mut().find(|(fingerprint, plan, _)| {
            *fingerprint == pending.fingerprint && *plan == pending.plan
        }) {
            Some((_, _, members)) => members.push(pending),
            None => {
                let plan = pending.plan.clone();
                groups.push((pending.fingerprint, plan, vec![pending]));
            }
        }
    }

    // Re-check the cache per group: another worker (or an earlier batch of
    // this one) may have filled the entry while we waited in the window.
    let mut run: Vec<(u64, QueryPlan, Vec<Pending>)> = Vec::new();
    for (fingerprint, plan, members) in groups {
        match shared.cache.get(fingerprint, &plan, epoch) {
            Some(result) => {
                shared
                    .counters
                    .cache_hits
                    .fetch_add(members.len() as u64, Ordering::Relaxed);
                reply_all(members, &result, true, 0);
            }
            None => run.push((fingerprint, plan, members)),
        }
    }
    if run.is_empty() {
        return;
    }

    let plans: Vec<QueryPlan> = run.iter().map(|(_, plan, _)| plan.clone()).collect();
    shared
        .counters
        .engine_batches
        .fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .engine_queries
        .fetch_add(plans.len() as u64, Ordering::Relaxed);
    // Only submissions the engine pass actually answers count as coalesced —
    // group members peeled off by the cache re-check above do not.
    let executed: usize = run.iter().map(|(_, _, members)| members.len()).sum();
    if executed > 1 {
        shared
            .counters
            .coalesced
            .fetch_add(executed as u64, Ordering::Relaxed);
    }

    match shared
        .engine
        .query_plans_opts(&plans, intra_query_workers(shared))
    {
        Ok(results) => {
            for ((fingerprint, plan, members), result) in run.into_iter().zip(results) {
                shared.cache.put(fingerprint, &plan, epoch, result.clone());
                reply_all(members, &result, false, executed - 1);
            }
        }
        Err(error) => {
            let message = error.to_string();
            for (_, _, members) in run {
                for pending in members {
                    let _ = pending.reply.send(Err(ServeError::Engine(message.clone())));
                }
            }
        }
    }
}

/// Intra-query fan-out workers donated to one engine pass. An explicit
/// configuration wins; otherwise hardware parallelism is divided evenly
/// among the currently busy workers (including the caller), so a lone query
/// on an otherwise-idle service splits its segment fan-out across the cores
/// the rest of the pool is not using, while a saturated pool donates nothing
/// (each pass scans sequentially; inter-query parallelism already covers the
/// machine).
fn intra_query_workers(shared: &Shared) -> usize {
    if shared.config.intra_query_threads != 0 {
        return shared.config.intra_query_threads;
    }
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let busy = shared.busy_workers.load(Ordering::Relaxed).max(1);
    (hardware / busy).max(1)
}

/// Sends one group's shared result to every waiter, stamping each copy with
/// that submission's own queue + batch-window wait.
fn reply_all(members: Vec<Pending>, result: &QueryResult, cache_hit: bool, coalesced_with: usize) {
    for pending in members {
        let mut copy = result.clone();
        copy.timings.queue_seconds = pending.enqueued.elapsed().as_secs_f64();
        // A waiter that gave up (dropped its receiver) is not an error.
        let _ = pending.reply.send(Ok(Served {
            result: copy,
            cache_hit,
            coalesced_with,
        }));
    }
}

/// Maintenance body: on every tick, seal left-over growing rows (only past
/// the configured floor — ingest seals its own batches) and merge undersized
/// sealed segments, both off the query path.
/// Longest maintenance backoff, as a multiple of the configured interval.
const MAINTENANCE_BACKOFF_CAP: u32 = 32;

fn maintenance_loop(shared: &Shared, stop: &(Mutex<bool>, Condvar), interval: Duration) {
    let (flag, signal) = stop;
    let mut stopped = flag.lock().unwrap_or_else(PoisonError::into_inner);
    // Backoff multiplier applied to the wait interval. Doubles (capped) after
    // a tick in which a seal or compaction failed — with a durable store
    // those are real I/O (a full disk keeps failing for a while), so
    // hammering the volume at the normal cadence just burns syscalls — and
    // resets to 1 the moment a tick completes cleanly. Queries are
    // unaffected either way: maintenance is advisory and the service keeps
    // serving from the in-memory state.
    let mut backoff: u32 = 1;
    loop {
        let (next, _) = signal
            .wait_timeout(stopped, interval.saturating_mul(backoff))
            .unwrap_or_else(PoisonError::into_inner);
        stopped = next;
        if *stopped {
            return;
        }
        shared
            .counters
            .maintenance_ticks
            .fetch_add(1, Ordering::Relaxed);
        let mut tick_failed = false;
        let stats = shared.engine.collection_stats();
        if stats.growing_rows >= shared.config.maintenance_seal_min_rows {
            match shared.engine.seal() {
                Ok(()) => {
                    shared
                        .counters
                        .maintenance_seals
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => tick_failed = true,
            }
        }
        match shared.engine.compact() {
            Ok(result) => {
                if result.segments_merged > 0 {
                    shared
                        .counters
                        .maintenance_segments_merged
                        .fetch_add(result.segments_merged as u64, Ordering::Relaxed);
                }
            }
            Err(_) => tick_failed = true,
        }
        if tick_failed {
            shared
                .counters
                .maintenance_io_errors
                .fetch_add(1, Ordering::Relaxed);
            backoff = (backoff.saturating_mul(2)).min(MAINTENANCE_BACKOFF_CAP);
        } else {
            backoff = 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_core::LovoConfig;
    use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};

    fn engine(frames: usize) -> Arc<Lovo> {
        let videos = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(frames)
                .with_seed(7),
        );
        Arc::new(Lovo::build(&videos, LovoConfig::default()).expect("build engine"))
    }

    #[test]
    fn submit_executes_then_caches() {
        let service = QueryService::start(engine(90), ServeConfig::default()).unwrap();
        let spec = QuerySpec::new("a red car driving in the center of the road");
        let first = service.submit(spec.clone()).unwrap();
        assert!(!first.cache_hit);
        assert!(!first.result.frames.is_empty());
        assert!(first.result.timings.queue_seconds >= 0.0);
        let second = service.submit(spec).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.result.frames, first.result.frames);
        let stats = service.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.engine_queries, 1);
        assert_eq!(service.cached_results(), 1);
    }

    #[test]
    fn serve_stats_merge_covers_every_field() {
        // Regression guard for the add-a-counter-forget-to-merge bug class:
        // all twelve fields distinct and nonzero on both sides, so a field
        // the merge body skips keeps its old value and fails its assertion.
        let mut a = ServeStats {
            submitted: 1,
            rejected: 2,
            cache_hits: 3,
            cache_stale_evictions: 4,
            engine_batches: 5,
            engine_queries: 6,
            coalesced: 7,
            worker_panics: 8,
            maintenance_ticks: 9,
            maintenance_seals: 10,
            maintenance_segments_merged: 11,
            maintenance_io_errors: 12,
        };
        a.merge(&ServeStats {
            submitted: 100,
            rejected: 200,
            cache_hits: 300,
            cache_stale_evictions: 400,
            engine_batches: 500,
            engine_queries: 600,
            coalesced: 700,
            worker_panics: 800,
            maintenance_ticks: 900,
            maintenance_seals: 1000,
            maintenance_segments_merged: 1100,
            maintenance_io_errors: 1200,
        });
        assert_eq!(a.submitted, 101);
        assert_eq!(a.rejected, 202);
        assert_eq!(a.cache_hits, 303);
        assert_eq!(a.cache_stale_evictions, 404);
        assert_eq!(a.engine_batches, 505);
        assert_eq!(a.engine_queries, 606);
        assert_eq!(a.coalesced, 707);
        assert_eq!(a.worker_panics, 808);
        assert_eq!(a.maintenance_ticks, 909);
        assert_eq!(a.maintenance_seals, 1010);
        assert_eq!(a.maintenance_segments_merged, 1111);
        assert_eq!(a.maintenance_io_errors, 1212);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = ServeStats {
            submitted: u64::MAX - 1,
            ..ServeStats::default()
        };
        a.merge(&ServeStats {
            submitted: 10,
            ..ServeStats::default()
        });
        assert_eq!(a.submitted, u64::MAX);
    }

    #[test]
    fn specs_normalizing_to_one_plan_share_a_cache_entry() {
        use lovo_video::QueryPredicate;
        let service = QueryService::start(engine(90), ServeConfig::default()).unwrap();
        let folded = QuerySpec::new("a bus")
            .with_predicate(QueryPredicate::videos([0, 1]).and(QueryPredicate::videos([1, 2])));
        let direct = QuerySpec::new("a bus").with_predicate(QueryPredicate::videos([1]));
        let miss = service.submit(folded).unwrap();
        assert!(!miss.cache_hit);
        let hit = service.submit(direct).unwrap();
        assert!(hit.cache_hit);
        assert_eq!(hit.result.frames, miss.result.frames);
    }

    #[test]
    fn ingest_invalidates_cached_results() {
        // Maintenance off: a background compaction after the append would
        // bump the epoch a second time between the assertions below.
        let service = QueryService::start(
            engine(90),
            ServeConfig::default().with_maintenance_interval(None),
        )
        .unwrap();
        let spec = QuerySpec::new("a red car on the road");
        assert!(!service.submit(spec.clone()).unwrap().cache_hit);
        assert!(service.submit(spec.clone()).unwrap().cache_hit);

        let mut batch = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(90)
                .with_seed(23),
        );
        for video in &mut batch.videos {
            video.id += 1000;
        }
        service.engine().add_videos(&batch).unwrap();

        // The epoch moved: the next submission recomputes, then re-caches.
        let recomputed = service.submit(spec.clone()).unwrap();
        assert!(!recomputed.cache_hit);
        assert!(service.submit(spec).unwrap().cache_hit);
        assert!(service.stats().cache_stale_evictions >= 1);
    }

    #[test]
    fn overload_returns_typed_rejection() {
        // One worker, one-query batches, depth-1 queue. The throttle is the
        // engine itself: a query costs milliseconds while the 8 submissions
        // below arrive within microseconds of each other, so the queue is
        // full for all but the first couple and the rest must be refused.
        // (Note `max_batch = 1` disables the coalescing window entirely —
        // the worker serves strictly one query at a time.)
        let config = ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(1)
            .with_max_batch(1)
            .with_cache_capacity(0)
            .with_maintenance_interval(None);
        let service = QueryService::start(engine(90), config).unwrap();
        let rejected = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for worker in 0..8 {
                let service = &service;
                let rejected = &rejected;
                scope.spawn(move || {
                    match service.submit(QuerySpec::new(format!("a car number {worker}"))) {
                        Ok(_) => {}
                        Err(ServeError::Rejected { queue_depth }) => {
                            assert_eq!(queue_depth, 1);
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                });
            }
        });
        assert!(rejected.load(Ordering::Relaxed) >= 1);
        assert_eq!(service.stats().rejected, rejected.load(Ordering::Relaxed));
    }

    #[test]
    fn identical_concurrent_submissions_coalesce_to_one_execution() {
        // One worker held busy by a first query forces the followers to pile
        // up in the queue; the long window then coalesces them into one
        // pass, and identical plans execute once.
        let config = ServeConfig::default()
            .with_workers(1)
            .with_batch_window(Duration::from_millis(50))
            .with_cache_capacity(0)
            .with_maintenance_interval(None);
        let service = QueryService::start(engine(90), config).unwrap();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..6 {
                let service = &service;
                handles
                    .push(scope.spawn(move || service.submit(QuerySpec::new("a bus on the road"))));
            }
            for handle in handles {
                let served = handle.join().unwrap().unwrap();
                assert!(!served.result.frames.is_empty());
            }
        });
        let stats = service.stats();
        // 6 submissions, at most a few engine executions (the first may run
        // alone before the rest pile up; the pile itself dedupes to one).
        assert_eq!(stats.submitted, 6);
        assert!(
            stats.engine_queries < 6,
            "identical plans should dedupe: {stats:?}"
        );
    }

    #[test]
    fn drop_drains_queued_submissions() {
        let config = ServeConfig::default()
            .with_workers(1)
            .with_batch_window(Duration::from_millis(20))
            .with_maintenance_interval(None);
        let service = QueryService::start(engine(90), config).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = &service;
                scope.spawn(move || {
                    let served = service.submit(QuerySpec::new("a car")).unwrap();
                    assert!(!served.result.frames.is_empty());
                });
            }
            // Dropping the service inside the scope races shutdown against
            // the submissions: each must either complete or see the typed
            // ShuttingDown error — never hang, never panic.
        });
        drop(service);
    }

    #[test]
    fn forced_intra_query_threads_parallelize_a_lone_query() {
        // Maintenance off so the appended segments are not compacted away;
        // two extra appends guarantee a multi-segment fan-out, and the
        // explicit worker count forces the parallel path even on a one-core
        // CI runner (the threads time-slice; correctness is what's tested).
        let config = ServeConfig::default()
            .with_intra_query_threads(2)
            .with_cache_capacity(0)
            .with_maintenance_interval(None);
        let service = QueryService::start(engine(90), config).unwrap();
        let mut offset = 1000u32;
        for seed in [51u64, 53] {
            let mut batch = VideoCollection::generate(
                DatasetConfig::for_kind(DatasetKind::Bellevue)
                    .with_frames_per_video(90)
                    .with_seed(seed),
            );
            for video in &mut batch.videos {
                video.id += offset;
            }
            offset += 1000;
            service.engine().add_videos(&batch).unwrap();
        }
        let served = service.submit(QuerySpec::new("a bus on the road")).unwrap();
        assert!(!served.result.frames.is_empty());
        let stats = served.result.search_stats;
        assert!(
            stats.parallel_segments > 0 && stats.parallel_segments == stats.segments_probed,
            "forced fan-out must scan every probed segment on a parallel worker: {stats:?}"
        );
        assert!(served.result.breakdown().contains("parallel"));
    }

    #[test]
    fn maintenance_compacts_fragmented_segments() {
        // Fragment the collection with several undersized appends, then let
        // maintenance (fast interval) compact them off the query path.
        let service = QueryService::start(
            engine(150),
            ServeConfig::default().with_maintenance_interval(Some(Duration::from_millis(10))),
        )
        .unwrap();
        let lovo = Arc::clone(service.engine());
        let mut offset = 1000u32;
        for seed in [41u64, 43, 47] {
            let mut batch = VideoCollection::generate(
                DatasetConfig::for_kind(DatasetKind::Bellevue)
                    .with_frames_per_video(150)
                    .with_seed(seed),
            );
            for video in &mut batch.videos {
                video.id += offset;
            }
            offset += 1000;
            lovo.add_videos(&batch).unwrap();
        }
        // Each append seals one undersized segment (default capacity 4096 is
        // far above a batch's rows), so maintenance has work; it may already
        // have merged mid-loop, so watch the lifetime counter, not a segment
        // snapshot.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.stats().maintenance_segments_merged < 2 {
            assert!(Instant::now() < deadline, "maintenance never compacted");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(service.stats().maintenance_ticks >= 1);
        // Queries still answer over the compacted layout.
        let served = service.submit(QuerySpec::new("a bus on the road")).unwrap();
        assert!(!served.result.frames.is_empty());
    }

    #[test]
    fn maintenance_survives_durable_io_faults_and_recovers() {
        use lovo_store::durability::{points, FaultAction, FaultPlan};
        let root =
            std::env::temp_dir().join(format!("lovo-serve-maint-faults-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let plan = Arc::new(FaultPlan::new());
        let videos = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(90)
                .with_seed(7),
        );
        let lovo = Arc::new(
            Lovo::build_durable(
                &videos,
                LovoConfig::default(),
                &root,
                lovo_core::DurabilityConfig::new().with_faults(Arc::clone(&plan)),
            )
            .unwrap(),
        );
        // Fragment the store so maintenance compaction has durable work.
        let mut offset = 1000u32;
        for seed in [41u64, 43] {
            let mut batch = VideoCollection::generate(
                DatasetConfig::for_kind(DatasetKind::Bellevue)
                    .with_frames_per_video(90)
                    .with_seed(seed),
            );
            for video in &mut batch.videos {
                video.id += offset;
            }
            offset += 1000;
            lovo.add_videos(&batch).unwrap();
        }
        let service = QueryService::start(
            Arc::clone(&lovo),
            ServeConfig::default().with_maintenance_interval(Some(Duration::from_millis(5))),
        )
        .unwrap();
        // Keep a manifest-write failure armed: every compaction attempt hits
        // real durable I/O and fails. The thread must count the errors and
        // stay alive (backing off), not die or panic.
        let deadline = Instant::now() + Duration::from_secs(20);
        while service.stats().maintenance_io_errors < 2 {
            plan.inject(points::MANIFEST_WRITE, FaultAction::Fail);
            assert!(
                Instant::now() < deadline,
                "maintenance never recorded the injected I/O failures"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // The service keeps serving while maintenance is failing.
        let served = service.submit(QuerySpec::new("a bus on the road")).unwrap();
        assert!(!served.result.frames.is_empty());
        // Withdraw the fault. The first failing tick already compacted in
        // memory — only its manifest write failed — so the retry's job is to
        // re-sync the manifest. Give it a few ticks (backoff caps at 32
        // intervals), then prove convergence by reopening from disk.
        while plan.take(points::MANIFEST_WRITE).is_some() {}
        let settled = service.stats().maintenance_ticks + 3;
        let deadline = Instant::now() + Duration::from_secs(20);
        while service.stats().maintenance_ticks < settled {
            assert!(Instant::now() < deadline, "maintenance ticks stalled");
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(service);
        drop(lovo);
        let (reopened, report) = Lovo::open(
            LovoConfig::default(),
            &root,
            lovo_core::DurabilityConfig::new(),
        )
        .unwrap();
        assert!(
            report.is_clean(),
            "retried manifest sync must have converged"
        );
        assert_eq!(
            reopened.collection_stats().sealed_segments,
            1,
            "the interrupted compaction must have committed on retry"
        );
        let result = reopened.query("a bus on the road").unwrap();
        assert!(!result.frames.is_empty());
        drop(reopened);
        let _ = std::fs::remove_dir_all(&root);
    }
}
