//! Service configuration: every serving knob in one place.

use std::time::Duration;

/// Configuration of a [`crate::QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing engine batches. Each worker drains one
    /// micro-batch at a time; the engine itself parallelizes the storage
    /// fan-out inside a batch, so a small pool (the default is 2) usually
    /// saturates the machine while maximizing coalescing opportunity.
    pub workers: usize,
    /// Admission-queue depth: submissions beyond this many *queued* (not yet
    /// picked up) requests are refused with [`crate::ServeError::Rejected`].
    pub queue_depth: usize,
    /// Micro-batch coalescing window. After picking up a submission, a worker
    /// keeps the batch open this long (or until [`ServeConfig::max_batch`])
    /// so concurrent arrivals share one engine pass. `Duration::ZERO`
    /// disables coalescing: every submission runs as its own engine call.
    pub batch_window: Duration,
    /// Upper bound on submissions coalesced into one engine pass.
    pub max_batch: usize,
    /// Total result-cache capacity in entries (split across
    /// [`ServeConfig::cache_shards`]). `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards. More shards mean less
    /// lock contention between unrelated queries; the capacity is divided
    /// evenly among them.
    pub cache_shards: usize,
    /// Background maintenance cadence. `None` disables the maintenance
    /// thread; with `Some(interval)` the service periodically seals left-over
    /// growing rows and compacts undersized sealed segments off the query
    /// path.
    pub maintenance_interval: Option<Duration>,
    /// Minimum buffered growing rows before a maintenance tick seals them.
    /// Ingest already seals after every batch, so this only mops up rows from
    /// direct database writes; the floor avoids mass-producing tiny segments
    /// that the next compaction would immediately re-merge.
    pub maintenance_seal_min_rows: usize,
    /// Intra-query fan-out workers donated to a batch's coarse search.
    /// `0` (the default) sizes the donation automatically from *idle* pool
    /// capacity: a lone query on an otherwise-idle service splits its sealed
    /// segments across the cores the other workers would have used, while a
    /// fully loaded pool keeps every query on one thread (inter-query
    /// parallelism already saturates the machine). A non-zero value forces
    /// that many fan-out workers for every executed batch.
    pub intra_query_threads: usize,
    /// Pre-fault mapped sealed segments when the service starts. Only
    /// meaningful when the engine was opened with the mmap read path and
    /// without `MAP_POPULATE`: the service issues one `MADV_WILLNEED` pass
    /// over every live mapping before accepting queries, trading a longer
    /// start for no demand-paging stalls on the first requests. A no-op on
    /// the heap read path.
    pub warmup_on_start: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 256,
            batch_window: Duration::from_micros(500),
            max_batch: 32,
            cache_capacity: 1024,
            cache_shards: 8,
            maintenance_interval: Some(Duration::from_millis(500)),
            maintenance_seal_min_rows: 256,
            intra_query_threads: 0,
            warmup_on_start: false,
        }
    }
}

impl ServeConfig {
    /// Builder-style worker-count override.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style admission-queue depth override.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Builder-style micro-batch window override (`Duration::ZERO` disables
    /// coalescing).
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Builder-style batch-size cap override.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Builder-style cache-capacity override (`0` disables the cache).
    pub fn with_cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Builder-style maintenance-interval override (`None` disables the
    /// maintenance thread).
    pub fn with_maintenance_interval(mut self, interval: Option<Duration>) -> Self {
        self.maintenance_interval = interval;
        self
    }

    /// Builder-style intra-query fan-out override (`0` = automatic from idle
    /// pool capacity).
    pub fn with_intra_query_threads(mut self, threads: usize) -> Self {
        self.intra_query_threads = threads;
        self
    }

    /// Builder-style start-time warm-up toggle (pre-fault mapped segments
    /// before the first query; a no-op on the heap read path).
    pub fn with_warmup_on_start(mut self, warmup: bool) -> Self {
        self.warmup_on_start = warmup;
        self
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be positive".into());
        }
        if self.max_batch == 0 {
            return Err("max_batch must be positive".into());
        }
        if self.cache_shards == 0 {
            return Err("cache_shards must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn zeroed_knobs_are_rejected() {
        assert!(ServeConfig::default().with_workers(0).validate().is_err());
        assert!(ServeConfig::default()
            .with_queue_depth(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default().with_max_batch(0).validate().is_err());
        // A zero cache capacity is legal: it disables caching.
        assert!(ServeConfig::default()
            .with_cache_capacity(0)
            .validate()
            .is_ok());
    }

    #[test]
    fn builders_set_their_field() {
        let config = ServeConfig::default()
            .with_workers(4)
            .with_queue_depth(8)
            .with_batch_window(Duration::from_millis(2))
            .with_max_batch(16)
            .with_cache_capacity(64)
            .with_maintenance_interval(None)
            .with_intra_query_threads(3)
            .with_warmup_on_start(true);
        assert_eq!(config.workers, 4);
        assert_eq!(config.queue_depth, 8);
        assert_eq!(config.batch_window, Duration::from_millis(2));
        assert_eq!(config.max_batch, 16);
        assert_eq!(config.cache_capacity, 64);
        assert_eq!(config.maintenance_interval, None);
        assert_eq!(config.intra_query_threads, 3);
        assert!(config.warmup_on_start);
    }
}
