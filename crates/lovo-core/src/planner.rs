//! The query planner: compiles `(text, predicate, k)` into a staged
//! [`QueryPlan`] the executor ([`crate::exec`]) runs.
//!
//! Every query — the plain `Lovo::query(text)` included — goes through one
//! plan path: **encode → prune → coarse filtered search → rerank →
//! aggregate**. The planner's job is the *prune* half: it folds the
//! [`QueryPredicate`] AST into the storage-level [`PatchPredicate`]
//! (conjunctions intersect video sets, time windows and class-code sets), and
//! detects predicates that are jointly unsatisfiable so the executor can
//! answer them with an empty result without touching the index at all.

use crate::config::LovoConfig;
use lovo_store::PatchPredicate;
use lovo_video::{ObjectClass, QueryPredicate};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One query as the user states it: the text, an optional metadata predicate
/// restricting where to search, and an optional fast-search `k` override.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// The natural-language query text.
    pub text: String,
    /// Metadata predicate restricting the search universe.
    pub predicate: QueryPredicate,
    /// Fast-search candidate count; `None` uses the configured default.
    pub fast_search_k: Option<usize>,
}

impl QuerySpec {
    /// A spec with no predicate and the default candidate count.
    pub fn new(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            predicate: QueryPredicate::Any,
            fast_search_k: None,
        }
    }

    /// Builder-style predicate attachment.
    pub fn with_predicate(mut self, predicate: QueryPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Builder-style fast-search `k` override. Passed through verbatim —
    /// `k = 0` is a valid no-candidates baseline (`query_with_k(text, 0)`
    /// has always returned an empty result).
    pub fn with_k(mut self, k: usize) -> Self {
        self.fast_search_k = Some(k);
        self
    }
}

/// The stages of a compiled plan, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanStage {
    /// Text encoding (§VI-A).
    Encode,
    /// Predicate compilation + metadata join + zone-map range derivation.
    Prune,
    /// Filtered fast search over the vector collection (Algorithm 1).
    CoarseSearch,
    /// Cross-modality rerank of the candidate frames (§VI-B).
    Rerank,
    /// Frame grouping, truncation, and result assembly.
    Aggregate,
}

impl PlanStage {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PlanStage::Encode => "encode",
            PlanStage::Prune => "prune",
            PlanStage::CoarseSearch => "coarse",
            PlanStage::Rerank => "rerank",
            PlanStage::Aggregate => "aggregate",
        }
    }
}

/// A compiled, executable query plan.
///
/// Serializable so a routing layer can compile a spec once and ship the same
/// plan to every engine shard as a message (the shard router's
/// coarse/rerank requests embed one of these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The query text (encoded in the first stage).
    pub text: String,
    /// The predicate as the user stated it.
    pub predicate: QueryPredicate,
    /// The compiled storage-level predicate the database resolves into a
    /// pushed-down filter.
    pub patch_predicate: PatchPredicate,
    /// True when the predicate is jointly unsatisfiable (e.g. two disjoint
    /// video sets): the executor returns an empty result without searching.
    pub provably_empty: bool,
    /// Fast-search candidate count (stage-1 `k`).
    pub fast_search_k: usize,
    /// Whether the cross-modality rerank stage runs.
    pub enable_rerank: bool,
    /// Candidate-frame budget of the rerank stage.
    pub rerank_frames: usize,
    /// Number of frames returned to the user.
    pub output_frames: usize,
}

impl QueryPlan {
    /// True when the plan carries a real pushdown (some constraint survived
    /// compilation).
    pub fn is_filtered(&self) -> bool {
        !self.patch_predicate.is_unconstrained() || self.provably_empty
    }

    /// A 64-bit fingerprint of everything that determines this plan's result:
    /// the query text, the effective fast-search `k`, the rerank/output
    /// budgets, and the *compiled* (flattened) predicate — so two specs whose
    /// predicate ASTs differ syntactically but compile to the same
    /// conjunction (e.g. `videos([1,2]) AND videos([2,3])` vs `videos([2])`)
    /// fingerprint identically. Result caches key on this plus an ingest
    /// epoch. Fingerprints are stable within a process but not across
    /// processes or versions — never persist them.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.text.hash(&mut hasher);
        self.fast_search_k.hash(&mut hasher);
        self.enable_rerank.hash(&mut hasher);
        self.rerank_frames.hash(&mut hasher);
        self.output_frames.hash(&mut hasher);
        self.provably_empty.hash(&mut hasher);
        self.patch_predicate.video_ids.hash(&mut hasher);
        // f64 is not Hash; bit patterns are exact and deterministic.
        self.patch_predicate
            .time_range
            .map(|(lo, hi)| (lo.to_bits(), hi.to_bits()))
            .hash(&mut hasher);
        self.patch_predicate.class_codes.hash(&mut hasher);
        hasher.finish()
    }

    /// The stages this plan executes, in order. Unconstrained plans skip
    /// `prune`; rerank-ablated plans skip `rerank`.
    pub fn stages(&self) -> Vec<PlanStage> {
        let mut stages = vec![PlanStage::Encode];
        if self.is_filtered() {
            stages.push(PlanStage::Prune);
        }
        stages.push(PlanStage::CoarseSearch);
        if self.enable_rerank {
            stages.push(PlanStage::Rerank);
        }
        stages.push(PlanStage::Aggregate);
        stages
    }

    /// One-line human-readable plan description, e.g.
    /// `encode -> prune -> coarse(k=400) -> rerank(64) -> aggregate(20)`.
    pub fn describe(&self) -> String {
        self.stages()
            .iter()
            .map(|stage| match stage {
                PlanStage::CoarseSearch => format!("coarse(k={})", self.fast_search_k),
                PlanStage::Rerank => format!("rerank({})", self.rerank_frames),
                PlanStage::Aggregate => format!("aggregate({})", self.output_frames),
                other => other.name().to_string(),
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Compiles [`QuerySpec`]s into [`QueryPlan`]s under one system configuration.
#[derive(Debug, Clone)]
pub struct QueryPlanner {
    config: LovoConfig,
}

impl QueryPlanner {
    /// A planner for the given configuration.
    pub fn new(config: LovoConfig) -> Self {
        Self { config }
    }

    /// Compiles one spec into an executable plan.
    pub fn plan(&self, spec: &QuerySpec) -> QueryPlan {
        let (patch_predicate, provably_empty) = compile_predicate(&spec.predicate);
        QueryPlan {
            text: spec.text.clone(),
            predicate: spec.predicate.clone(),
            patch_predicate,
            provably_empty,
            fast_search_k: spec.fast_search_k.unwrap_or(self.config.fast_search_k),
            enable_rerank: self.config.enable_rerank,
            rerank_frames: self.config.rerank_frames,
            output_frames: self.config.output_frames,
        }
    }
}

/// Conjunctive fold of the predicate AST into the storage-level predicate.
/// Returns the compiled predicate plus whether it is provably empty.
fn compile_predicate(predicate: &QueryPredicate) -> (PatchPredicate, bool) {
    let mut compiled = PatchPredicate::default();
    let mut empty = false;
    fold(predicate, &mut compiled, &mut empty);
    (compiled, empty)
}

fn fold(predicate: &QueryPredicate, compiled: &mut PatchPredicate, empty: &mut bool) {
    match predicate {
        QueryPredicate::Any => {}
        QueryPredicate::Videos(ids) => {
            let set: BTreeSet<u32> = ids.iter().copied().collect();
            intersect(&mut compiled.video_ids, set, empty);
        }
        QueryPredicate::TimeRange { start, end } => {
            let (mut lo, mut hi) = (*start, *end);
            if let Some((existing_lo, existing_hi)) = compiled.time_range {
                lo = lo.max(existing_lo);
                hi = hi.min(existing_hi);
            }
            if lo > hi {
                *empty = true;
            }
            compiled.time_range = Some((lo, hi));
        }
        QueryPredicate::Class(class) => {
            // A Car predicate also accepts SUV patches, mirroring the
            // ground-truth rule of `QueryConstraints::matches`.
            let codes: BTreeSet<u8> = match class {
                ObjectClass::Car => [ObjectClass::Car, ObjectClass::Suv]
                    .iter()
                    .map(|c| c.code() as u8)
                    .collect(),
                other => std::iter::once(other.code() as u8).collect(),
            };
            intersect(&mut compiled.class_codes, codes, empty);
        }
        QueryPredicate::And(children) => {
            for child in children {
                fold(child, compiled, empty);
            }
        }
    }
}

/// Intersects an optional constraint set with a new one; an empty result
/// marks the whole predicate unsatisfiable.
fn intersect<T: Ord + Copy>(
    slot: &mut Option<BTreeSet<T>>,
    incoming: BTreeSet<T>,
    empty: &mut bool,
) {
    let merged = match slot.take() {
        None => incoming,
        Some(existing) => existing.intersection(&incoming).copied().collect(),
    };
    if merged.is_empty() {
        *empty = true;
    }
    *slot = Some(merged);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner() -> QueryPlanner {
        QueryPlanner::new(LovoConfig::default())
    }

    #[test]
    fn unconstrained_spec_compiles_to_unfiltered_plan() {
        let plan = planner().plan(&QuerySpec::new("a red car"));
        assert!(!plan.is_filtered());
        assert!(!plan.provably_empty);
        assert!(plan.patch_predicate.is_unconstrained());
        assert_eq!(plan.fast_search_k, LovoConfig::default().fast_search_k);
        let stages: Vec<_> = plan.stages().iter().map(PlanStage::name).collect();
        assert_eq!(stages, ["encode", "coarse", "rerank", "aggregate"]);
        assert!(plan.describe().contains("coarse(k=400)"));
    }

    #[test]
    fn predicate_compiles_into_patch_predicate() {
        let spec = QuerySpec::new("a bus").with_predicate(
            QueryPredicate::videos([3, 1])
                .and(QueryPredicate::time_range(5.0, 9.0))
                .and(QueryPredicate::class(ObjectClass::Bus)),
        );
        let plan = planner().plan(&spec);
        assert!(plan.is_filtered());
        assert!(!plan.provably_empty);
        let pred = &plan.patch_predicate;
        assert_eq!(
            pred.video_ids
                .as_ref()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![1, 3]
        );
        assert_eq!(pred.time_range, Some((5.0, 9.0)));
        assert_eq!(
            pred.class_codes
                .as_ref()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![ObjectClass::Bus.code() as u8]
        );
        let stages: Vec<_> = plan.stages().iter().map(PlanStage::name).collect();
        assert_eq!(stages, ["encode", "prune", "coarse", "rerank", "aggregate"]);
    }

    #[test]
    fn car_class_predicate_accepts_suv_code() {
        let plan = planner()
            .plan(&QuerySpec::new("a car").with_predicate(QueryPredicate::class(ObjectClass::Car)));
        let codes = plan.patch_predicate.class_codes.unwrap();
        assert!(codes.contains(&(ObjectClass::Car.code() as u8)));
        assert!(codes.contains(&(ObjectClass::Suv.code() as u8)));
    }

    #[test]
    fn conjunction_intersects_constraints() {
        let spec = QuerySpec::new("q").with_predicate(
            QueryPredicate::videos([1, 2, 3])
                .and(QueryPredicate::videos([2, 3, 4]))
                .and(QueryPredicate::time_range(0.0, 10.0))
                .and(QueryPredicate::time_range(5.0, 20.0)),
        );
        let plan = planner().plan(&spec);
        assert!(!plan.provably_empty);
        let pred = &plan.patch_predicate;
        assert_eq!(
            pred.video_ids
                .as_ref()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(pred.time_range, Some((5.0, 10.0)));
    }

    #[test]
    fn unsatisfiable_predicates_are_provably_empty() {
        let planner = planner();
        let disjoint_videos = planner.plan(
            &QuerySpec::new("q")
                .with_predicate(QueryPredicate::videos([1]).and(QueryPredicate::videos([2]))),
        );
        assert!(disjoint_videos.provably_empty);

        let disjoint_time = planner.plan(&QuerySpec::new("q").with_predicate(
            QueryPredicate::time_range(0.0, 1.0).and(QueryPredicate::time_range(2.0, 3.0)),
        ));
        assert!(disjoint_time.provably_empty);

        let disjoint_class = planner.plan(&QuerySpec::new("q").with_predicate(
            QueryPredicate::class(ObjectClass::Bus).and(QueryPredicate::class(ObjectClass::Dog)),
        ));
        assert!(disjoint_class.provably_empty);

        let no_videos =
            planner.plan(&QuerySpec::new("q").with_predicate(QueryPredicate::videos([])));
        assert!(no_videos.provably_empty);
    }

    #[test]
    fn fingerprint_is_stable_and_normalizes_predicates() {
        let planner = planner();
        let base = planner.plan(&QuerySpec::new("a red car"));
        assert_eq!(base.fingerprint(), base.fingerprint());

        // Syntactically different predicates that flatten to the same
        // conjunction share a fingerprint.
        let folded = planner
            .plan(&QuerySpec::new("a red car").with_predicate(
                QueryPredicate::videos([1, 2]).and(QueryPredicate::videos([2, 3])),
            ));
        let direct =
            planner.plan(&QuerySpec::new("a red car").with_predicate(QueryPredicate::videos([2])));
        assert_eq!(folded.fingerprint(), direct.fingerprint());

        // Anything result-relevant separates fingerprints.
        let other_text = planner.plan(&QuerySpec::new("a blue car"));
        let other_k = planner.plan(&QuerySpec::new("a red car").with_k(10));
        let other_pred =
            planner.plan(&QuerySpec::new("a red car").with_predicate(QueryPredicate::videos([7])));
        assert_ne!(base.fingerprint(), other_text.fingerprint());
        assert_ne!(base.fingerprint(), other_k.fingerprint());
        assert_ne!(base.fingerprint(), other_pred.fingerprint());
    }

    #[test]
    fn spec_k_override_wins() {
        let plan = planner().plan(&QuerySpec::new("q").with_k(33));
        assert_eq!(plan.fast_search_k, 33);
        // k = 0 passes through: the historical no-candidates baseline.
        let plan = planner().plan(&QuerySpec::new("q").with_k(0));
        assert_eq!(plan.fast_search_k, 0);
    }
}
