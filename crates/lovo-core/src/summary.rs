//! The Video Summary module (§IV): key-frame extraction, visual encoding, and
//! vector-collection construction.
//!
//! Summarization is query-agnostic and — since the segmented storage engine —
//! *incremental*: [`VideoSummarizer::ingest_into`] appends one batch of
//! videos to an existing database, sealing the rows it adds into fresh
//! storage segments without ever touching (or rebuilding) segments from
//! earlier batches. Each selected key frame is encoded into per-patch class
//! embeddings and predicted boxes; every patch becomes one row of the vector
//! collection with a globally unique patch id, and its metadata row (video,
//! frame, patch index, box, timestamp) goes to the relational store in the
//! same per-frame batch, so the database write lock is taken once per frame
//! rather than once per patch. Encoding is spread over a scoped thread pool
//! sized by [`crate::LovoConfig::ingest_workers`]; the output is
//! deterministic regardless of thread count because patch ids are assigned
//! from the frame's position, not from completion order.

use crate::config::LovoConfig;
use crate::{LovoError, Result};
use lovo_encoder::{FrameEncoding, VisualEncoder};
use lovo_store::{PatchRecord, VectorDatabase};
use lovo_video::keyframe::KeyframeExtractor;
use lovo_video::{Frame, VideoCollection};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Name of the vector collection LOVO stores patch embeddings in.
pub const PATCH_COLLECTION: &str = "lovo_patches";

// The packed patch id is owned by the storage crate since the planner
// refactor — the store itself exploits the packing for video-predicate bit
// tests and zone-map pruning. Re-exported here because the engine assigns
// the ids and long-standing callers import them from this module.
pub use lovo_store::patchid::{patch_id, split_patch_id, MAX_PATCH_INDEX, MAX_VIDEO_ID};

/// Statistics of one ingestion run. [`IngestStats::accumulate`] folds the
/// per-run statistics of incremental appends into a lifetime total.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestStats {
    /// Total frames in the input collection.
    pub total_frames: usize,
    /// Key frames selected for encoding.
    pub key_frames: usize,
    /// Patch embeddings inserted into the vector collection.
    pub patches_indexed: usize,
    /// Wall-clock seconds spent extracting key frames.
    pub keyframe_seconds: f64,
    /// Wall-clock seconds spent encoding frames (visual encoder).
    pub encoding_seconds: f64,
    /// Wall-clock seconds spent inserting + sealing segments.
    pub indexing_seconds: f64,
    /// Storage segments sealed by this run.
    pub segments_sealed: usize,
    /// Segment ANN index builds performed by this run. Incremental appends
    /// build only the segments they seal — never existing ones — so this
    /// stays proportional to the appended batch, not the collection.
    pub index_builds: usize,
}

impl IngestStats {
    /// Total processing time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.keyframe_seconds + self.encoding_seconds + self.indexing_seconds
    }

    /// Folds another run's statistics into this one (used by the engine to
    /// keep a lifetime total across incremental appends).
    pub fn accumulate(&mut self, run: &IngestStats) {
        self.total_frames += run.total_frames;
        self.key_frames += run.key_frames;
        self.patches_indexed += run.patches_indexed;
        self.keyframe_seconds += run.keyframe_seconds;
        self.encoding_seconds += run.encoding_seconds;
        self.indexing_seconds += run.indexing_seconds;
        self.segments_sealed += run.segments_sealed;
        self.index_builds += run.index_builds;
    }
}

/// A key frame retained for query-time rerank, addressed by `(video, frame)`.
pub type KeyframeMap = HashMap<(u32, u32), Frame>;

/// The video-summary pipeline.
pub struct VideoSummarizer {
    encoder: VisualEncoder,
    extractor: KeyframeExtractor,
    min_objectness: f32,
    index_kind: lovo_index::IndexKind,
    segment_capacity: usize,
    workers: usize,
}

impl VideoSummarizer {
    /// Creates a summarizer from the system configuration.
    pub fn new(config: &LovoConfig) -> Result<Self> {
        let workers = if config.ingest_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.ingest_workers
        };
        Ok(Self {
            encoder: VisualEncoder::new(config.visual)?,
            extractor: KeyframeExtractor::new(config.keyframe_policy),
            min_objectness: config.min_objectness,
            index_kind: config.index_kind,
            segment_capacity: config.segment_capacity,
            workers,
        })
    }

    /// Borrow the underlying visual encoder (the query engine shares its
    /// attribute space).
    pub fn encoder(&self) -> &VisualEncoder {
        &self.encoder
    }

    /// Resolved ingest worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs the full summary pipeline over a fresh database: key-frame
    /// extraction, encoding, and insertion. Returns ingestion statistics and
    /// the map of retained key frames used later by the rerank stage.
    pub fn ingest(
        &self,
        videos: &VideoCollection,
        database: &VectorDatabase,
    ) -> Result<(IngestStats, KeyframeMap)> {
        let mut keyframes = KeyframeMap::new();
        let stats = self.ingest_into(videos, database, &mut keyframes)?;
        Ok((stats, keyframes))
    }

    /// Appends one batch of videos to `database`, extending `keyframes` with
    /// the batch's retained key frames. The appended rows land in the
    /// collection's growing segment(s) and are sealed at the end of the run;
    /// segments sealed by earlier runs are never rebuilt, which is what makes
    /// incremental ingest cost proportional to the batch.
    pub fn ingest_into(
        &self,
        videos: &VideoCollection,
        database: &VectorDatabase,
        keyframes: &mut KeyframeMap,
    ) -> Result<IngestStats> {
        for video in &videos.videos {
            if video.id > MAX_VIDEO_ID {
                return Err(LovoError::InvalidState(format!(
                    "video id {} exceeds the patch-id packing limit {MAX_VIDEO_ID}; \
                     larger ids would wrap and collide",
                    video.id
                )));
            }
        }
        let mut stats = IngestStats {
            total_frames: videos.total_frames(),
            ..Default::default()
        };

        // --- key-frame extraction (§IV-A) ---
        let keyframe_start = Instant::now();
        let mut selected: Vec<(u32, &Frame)> = Vec::new();
        for video in &videos.videos {
            for idx in self.extractor.select_indices(&video.frames) {
                selected.push((video.id, &video.frames[idx]));
            }
        }
        stats.key_frames = selected.len();
        stats.keyframe_seconds = keyframe_start.elapsed().as_secs_f64();

        // --- visual encoding (§IV-B, §IV-C) ---
        let encode_start = Instant::now();
        let encodings = self.encode_parallel(&selected)?;
        stats.encoding_seconds = encode_start.elapsed().as_secs_f64();

        // --- vector collection + metadata construction (§IV-D, §V-B) ---
        let index_start = Instant::now();
        if !database.has_collection(PATCH_COLLECTION) {
            database.create_collection(
                PATCH_COLLECTION,
                lovo_store::CollectionConfig::new(self.encoder.config().class_dim)
                    .with_index_kind(self.index_kind)
                    .with_segment_capacity(self.segment_capacity),
            )?;
        }
        let segments_before = database
            .collection_stats(PATCH_COLLECTION)
            .map(|s| (s.sealed_segments, s.index_builds))
            .unwrap_or((0, 0));

        keyframes.reserve(selected.len());
        let durable = database.is_durable();
        let mut frame_batch: Vec<(&[f32], PatchRecord)> = Vec::new();
        for ((video_id, frame), encoding) in selected.iter().zip(encodings.iter()) {
            keyframes.insert((*video_id, frame.index as u32), (*frame).clone());
            frame_batch.clear();
            for patch in &encoding.patches {
                if patch.objectness < self.min_objectness {
                    continue;
                }
                if patch.patch_index > MAX_PATCH_INDEX {
                    return Err(LovoError::InvalidState(format!(
                        "patch index {} exceeds the patch-id packing limit {MAX_PATCH_INDEX}",
                        patch.patch_index
                    )));
                }
                let patch_id = patch_id(*video_id, frame.index as u32, patch.patch_index);
                let record = PatchRecord {
                    patch_id,
                    video_id: *video_id,
                    frame_index: frame.index as u32,
                    patch_index: patch.patch_index,
                    bbox: (
                        patch.predicted_box.x,
                        patch.predicted_box.y,
                        patch.predicted_box.w,
                        patch.predicted_box.h,
                    ),
                    timestamp: frame.timestamp,
                    class_code: patch.dominant_class.map(|class| class.code() as u8),
                };
                frame_batch.push((patch.class_embedding.as_slice(), record));
            }
            if frame_batch.is_empty() {
                continue;
            }
            stats.patches_indexed += if durable {
                // Log the serialized key frame in the same WAL record as its
                // patch rows: after a crash, `Lovo::open` rebuilds the rerank
                // frame map from these blobs instead of re-ingesting footage.
                let frame_key = (u64::from(*video_id) << 32) | (frame.index as u32 as u64);
                let blob = lovo_video::wire::encode_frame(frame);
                database.insert_patches_with_aux(
                    PATCH_COLLECTION,
                    frame_batch.drain(..),
                    vec![(frame_key, blob)],
                )?
            } else {
                database.insert_patches(PATCH_COLLECTION, frame_batch.drain(..))?
            };
        }
        if stats.patches_indexed == 0 {
            if videos.videos.is_empty() {
                // An empty batch is legal: a freshly provisioned engine
                // shard starts with no videos and receives its corpus
                // through later ingests. The (empty) collection above still
                // exists, so queries answer empty instead of erroring.
                return Ok(stats);
            }
            // Non-empty footage yielding zero embeddings is a real pipeline
            // failure (objectness threshold ate everything?), not a shape of
            // input the caller should be able to produce on purpose.
            return Err(LovoError::InvalidState(
                "ingestion produced no patch embeddings from non-empty footage".into(),
            ));
        }
        database.seal_collection(PATCH_COLLECTION)?;
        let segments_after = database
            .collection_stats(PATCH_COLLECTION)
            .map(|s| (s.sealed_segments, s.index_builds))
            .unwrap_or((0, 0));
        stats.segments_sealed = segments_after.0.saturating_sub(segments_before.0);
        stats.index_builds = segments_after.1.saturating_sub(segments_before.1);
        stats.indexing_seconds = index_start.elapsed().as_secs_f64();

        Ok(stats)
    }

    /// Encodes the selected key frames, splitting the work across a scoped
    /// thread pool of [`VideoSummarizer::workers`] threads.
    fn encode_parallel(&self, selected: &[(u32, &Frame)]) -> Result<Vec<FrameEncoding>> {
        let workers = self.workers.max(1);
        if workers == 1 || selected.len() < 32 {
            return selected
                .iter()
                .map(|(_, frame)| self.encoder.encode_frame(frame).map_err(LovoError::from))
                .collect();
        }
        let chunk_size = selected.len().div_ceil(workers);
        let chunks: Vec<&[(u32, &Frame)]> = selected.chunks(chunk_size).collect();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|(_, frame)| self.encoder.encode_frame(frame))
                            .collect::<std::result::Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("encoder worker panicked"))
                .collect::<Vec<_>>()
        });

        let mut encodings = Vec::with_capacity(selected.len());
        for chunk_result in results {
            encodings.extend(chunk_result.map_err(LovoError::from)?);
        }
        Ok(encodings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::{DatasetConfig, DatasetKind};

    fn small_collection() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(90)
                .with_seed(5),
        )
    }

    #[test]
    fn patch_id_round_trips() {
        let id = patch_id(3, 70_000, 39);
        assert_eq!(split_patch_id(id), (3, 70_000, 39));
        let id2 = patch_id(0, 0, 0);
        assert_eq!(split_patch_id(id2), (0, 0, 0));
    }

    #[test]
    fn patch_id_round_trips_at_the_packing_boundary() {
        // Regression: video ids occupy bits 44..63 (20 bits). The largest
        // representable id must round-trip; anything larger is rejected at
        // ingest (see `ingest_rejects_video_ids_beyond_packing_limit`).
        let id = patch_id(MAX_VIDEO_ID, u32::MAX, MAX_PATCH_INDEX);
        assert_eq!(
            split_patch_id(id),
            (MAX_VIDEO_ID, u32::MAX, MAX_PATCH_INDEX)
        );
    }

    #[test]
    fn ingest_rejects_video_ids_beyond_packing_limit() {
        let mut videos = small_collection();
        videos.videos[0].id = MAX_VIDEO_ID + 1;
        let summarizer = VideoSummarizer::new(&LovoConfig::default()).unwrap();
        let db = VectorDatabase::new();
        let err = summarizer.ingest(&videos, &db).unwrap_err();
        assert!(err.to_string().contains("packing limit"), "{err}");

        // The boundary id itself is accepted.
        let mut ok_videos = small_collection();
        ok_videos.videos[0].id = MAX_VIDEO_ID;
        let (_, keyframes) = summarizer.ingest(&ok_videos, &db).unwrap();
        assert!(keyframes.keys().any(|(video, _)| *video == MAX_VIDEO_ID));
    }

    #[test]
    fn patch_ids_are_unique_across_frames_and_patches() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for video in 0..3u32 {
            for frame in 0..100u32 {
                for patch in 0..40u32 {
                    assert!(seen.insert(patch_id(video, frame, patch)));
                }
            }
        }
    }

    #[test]
    fn ingest_populates_database_and_keyframes() {
        let videos = small_collection();
        let config = LovoConfig::default();
        let summarizer = VideoSummarizer::new(&config).unwrap();
        let db = VectorDatabase::new();
        let (stats, keyframes) = summarizer.ingest(&videos, &db).unwrap();
        assert_eq!(stats.total_frames, videos.total_frames());
        assert!(stats.key_frames > 0 && stats.key_frames <= stats.total_frames);
        assert!(stats.patches_indexed >= stats.key_frames);
        assert_eq!(keyframes.len(), stats.key_frames);
        assert_eq!(db.metadata_rows(), stats.patches_indexed);
        assert!(stats.total_seconds() > 0.0);
        assert!(stats.segments_sealed >= 1);
        assert_eq!(stats.index_builds, stats.segments_sealed);
    }

    #[test]
    fn incremental_ingest_seals_only_new_segments() {
        let first = small_collection();
        let second = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(90)
                .with_seed(17),
        );
        // Shift the second batch's video ids past the first batch's.
        let mut second = second;
        let offset = first.videos.len() as u32;
        for video in &mut second.videos {
            video.id += offset;
        }

        let summarizer = VideoSummarizer::new(&LovoConfig::default()).unwrap();
        let db = VectorDatabase::new();
        let mut keyframes = KeyframeMap::new();
        let run1 = summarizer.ingest_into(&first, &db, &mut keyframes).unwrap();
        let builds_after_first = db.collection_stats(PATCH_COLLECTION).unwrap().index_builds;
        let run2 = summarizer
            .ingest_into(&second, &db, &mut keyframes)
            .unwrap();
        let stats = db.collection_stats(PATCH_COLLECTION).unwrap();

        // The append sealed (and built) only its own segments.
        assert!(run2.segments_sealed >= 1);
        assert_eq!(stats.index_builds, builds_after_first + run2.index_builds);
        assert_eq!(stats.entities, run1.patches_indexed + run2.patches_indexed);
        assert_eq!(keyframes.len(), run1.key_frames + run2.key_frames);
    }

    #[test]
    fn keyframe_policy_reduces_indexed_patches() {
        let videos = small_collection();
        let db_kf = VectorDatabase::new();
        let db_all = VectorDatabase::new();
        let with_kf = VideoSummarizer::new(&LovoConfig::default()).unwrap();
        let without_kf = VideoSummarizer::new(&LovoConfig::ablation_without_keyframe()).unwrap();
        let (kf_stats, _) = with_kf.ingest(&videos, &db_kf).unwrap();
        let (all_stats, _) = without_kf.ingest(&videos, &db_all).unwrap();
        assert!(all_stats.key_frames > kf_stats.key_frames);
        assert!(all_stats.patches_indexed > kf_stats.patches_indexed);
    }

    #[test]
    fn objectness_filter_shrinks_collection() {
        let videos = small_collection();
        let config = LovoConfig {
            min_objectness: 0.05,
            ..LovoConfig::default()
        };
        let filtered = VideoSummarizer::new(&config).unwrap();
        let db_filtered = VectorDatabase::new();
        let (filtered_stats, _) = filtered.ingest(&videos, &db_filtered).unwrap();

        let unfiltered = VideoSummarizer::new(&LovoConfig::default()).unwrap();
        let db_all = VectorDatabase::new();
        let (all_stats, _) = unfiltered.ingest(&videos, &db_all).unwrap();
        assert!(filtered_stats.patches_indexed < all_stats.patches_indexed);
    }

    #[test]
    fn configured_worker_count_is_respected_and_deterministic() {
        let videos = small_collection();
        let serial = VideoSummarizer::new(&LovoConfig::default().with_ingest_workers(1)).unwrap();
        let parallel = VideoSummarizer::new(&LovoConfig::default().with_ingest_workers(8)).unwrap();
        assert_eq!(serial.workers(), 1);
        assert_eq!(parallel.workers(), 8);
        let db_serial = VectorDatabase::new();
        let db_parallel = VectorDatabase::new();
        let (serial_stats, _) = serial.ingest(&videos, &db_serial).unwrap();
        let (parallel_stats, _) = parallel.ingest(&videos, &db_parallel).unwrap();
        // Same frames, same patches, regardless of thread count.
        assert_eq!(serial_stats.key_frames, parallel_stats.key_frames);
        assert_eq!(serial_stats.patches_indexed, parallel_stats.patches_indexed);
    }

    #[test]
    fn auto_worker_count_uses_available_parallelism() {
        let summarizer = VideoSummarizer::new(&LovoConfig::default()).unwrap();
        let expected = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(summarizer.workers(), expected);
    }
}
