//! The Video Summary module (§IV): key-frame extraction, visual encoding, and
//! vector-collection construction.
//!
//! Summarization is query-agnostic and happens once per video collection.
//! Each selected key frame is encoded into per-patch class embeddings and
//! predicted boxes; every patch becomes one row of the vector collection with
//! a globally unique patch id, and its metadata row (video, frame, patch
//! index, box, timestamp) goes to the relational store. Encoding is spread
//! over a small crossbeam thread scope so multi-core machines ingest faster;
//! the output is deterministic regardless of thread count because patch ids
//! are assigned from the frame's position, not from completion order.

use crate::config::LovoConfig;
use crate::{LovoError, Result};
use lovo_encoder::{FrameEncoding, VisualEncoder};
use lovo_store::{PatchRecord, VectorDatabase};
use lovo_video::keyframe::KeyframeExtractor;
use lovo_video::{Frame, VideoCollection};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Name of the vector collection LOVO stores patch embeddings in.
pub const PATCH_COLLECTION: &str = "lovo_patches";

/// Statistics of one ingestion run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestStats {
    /// Total frames in the input collection.
    pub total_frames: usize,
    /// Key frames selected for encoding.
    pub key_frames: usize,
    /// Patch embeddings inserted into the vector collection.
    pub patches_indexed: usize,
    /// Wall-clock seconds spent extracting key frames.
    pub keyframe_seconds: f64,
    /// Wall-clock seconds spent encoding frames (visual encoder).
    pub encoding_seconds: f64,
    /// Wall-clock seconds spent inserting + building the index.
    pub indexing_seconds: f64,
}

impl IngestStats {
    /// Total processing time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.keyframe_seconds + self.encoding_seconds + self.indexing_seconds
    }
}

/// A key frame retained for query-time rerank, addressed by `(video, frame)`.
pub type KeyframeMap = HashMap<(u32, u32), Frame>;

/// The video-summary pipeline.
pub struct VideoSummarizer {
    encoder: VisualEncoder,
    extractor: KeyframeExtractor,
    min_objectness: f32,
    index_kind: lovo_index::IndexKind,
}

impl VideoSummarizer {
    /// Creates a summarizer from the system configuration.
    pub fn new(config: &LovoConfig) -> Result<Self> {
        Ok(Self {
            encoder: VisualEncoder::new(config.visual)?,
            extractor: KeyframeExtractor::new(config.keyframe_policy),
            min_objectness: config.min_objectness,
            index_kind: config.index_kind,
        })
    }

    /// Borrow the underlying visual encoder (the query engine shares its
    /// attribute space).
    pub fn encoder(&self) -> &VisualEncoder {
        &self.encoder
    }

    /// Runs the full summary pipeline: key-frame extraction, encoding, and
    /// insertion into `database`. Returns ingestion statistics and the map of
    /// retained key frames used later by the rerank stage.
    pub fn ingest(
        &self,
        videos: &VideoCollection,
        database: &VectorDatabase,
    ) -> Result<(IngestStats, KeyframeMap)> {
        let mut stats = IngestStats {
            total_frames: videos.total_frames(),
            ..Default::default()
        };

        // --- key-frame extraction (§IV-A) ---
        let keyframe_start = Instant::now();
        let mut selected: Vec<(u32, &Frame)> = Vec::new();
        for video in &videos.videos {
            for idx in self.extractor.select_indices(&video.frames) {
                selected.push((video.id, &video.frames[idx]));
            }
        }
        stats.key_frames = selected.len();
        stats.keyframe_seconds = keyframe_start.elapsed().as_secs_f64();

        // --- visual encoding (§IV-B, §IV-C) ---
        let encode_start = Instant::now();
        let encodings = self.encode_parallel(&selected)?;
        stats.encoding_seconds = encode_start.elapsed().as_secs_f64();

        // --- vector collection + metadata construction (§IV-D, §V-B) ---
        let index_start = Instant::now();
        if !database.has_collection(PATCH_COLLECTION) {
            database.create_collection(
                PATCH_COLLECTION,
                lovo_store::CollectionConfig::new(self.encoder.config().class_dim)
                    .with_index_kind(self.index_kind),
            )?;
        }
        let mut keyframes: KeyframeMap = HashMap::with_capacity(selected.len());
        for ((video_id, frame), encoding) in selected.iter().zip(encodings.iter()) {
            keyframes.insert((*video_id, frame.index as u32), (*frame).clone());
            for patch in &encoding.patches {
                if patch.objectness < self.min_objectness {
                    continue;
                }
                let patch_id = patch_id(*video_id, frame.index as u32, patch.patch_index);
                let record = PatchRecord {
                    patch_id,
                    video_id: *video_id,
                    frame_index: frame.index as u32,
                    patch_index: patch.patch_index,
                    bbox: (
                        patch.predicted_box.x,
                        patch.predicted_box.y,
                        patch.predicted_box.w,
                        patch.predicted_box.h,
                    ),
                    timestamp: frame.timestamp,
                };
                database.insert_patch(PATCH_COLLECTION, &patch.class_embedding, record)?;
                stats.patches_indexed += 1;
            }
        }
        if stats.patches_indexed == 0 {
            return Err(LovoError::InvalidState(
                "ingestion produced no patch embeddings (empty collection?)".into(),
            ));
        }
        database.build_collection(PATCH_COLLECTION)?;
        stats.indexing_seconds = index_start.elapsed().as_secs_f64();

        Ok((stats, keyframes))
    }

    /// Encodes the selected key frames, splitting the work across a small
    /// scoped-thread pool when more than one CPU is available.
    fn encode_parallel(&self, selected: &[(u32, &Frame)]) -> Result<Vec<FrameEncoding>> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 4);
        if workers == 1 || selected.len() < 32 {
            return selected
                .iter()
                .map(|(_, frame)| self.encoder.encode_frame(frame).map_err(LovoError::from))
                .collect();
        }
        let chunk_size = selected.len().div_ceil(workers);
        let chunks: Vec<&[(u32, &Frame)]> = selected.chunks(chunk_size).collect();
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|(_, frame)| self.encoder.encode_frame(frame))
                            .collect::<std::result::Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("encoder worker panicked"))
                .collect::<Vec<_>>()
        });

        let mut encodings = Vec::with_capacity(selected.len());
        for chunk_result in results {
            encodings.extend(chunk_result.map_err(LovoError::from)?);
        }
        Ok(encodings)
    }
}

/// Globally unique patch id: video (high bits), frame, patch position.
pub fn patch_id(video_id: u32, frame_index: u32, patch_index: u32) -> u64 {
    (u64::from(video_id) << 44) | (u64::from(frame_index) << 12) | u64::from(patch_index & 0xfff)
}

/// Inverse of [`patch_id`].
pub fn split_patch_id(id: u64) -> (u32, u32, u32) {
    (
        (id >> 44) as u32,
        ((id >> 12) & 0xffff_ffff) as u32,
        (id & 0xfff) as u32,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::{DatasetConfig, DatasetKind};

    fn small_collection() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(90)
                .with_seed(5),
        )
    }

    #[test]
    fn patch_id_round_trips() {
        let id = patch_id(3, 70_000, 39);
        assert_eq!(split_patch_id(id), (3, 70_000, 39));
        let id2 = patch_id(0, 0, 0);
        assert_eq!(split_patch_id(id2), (0, 0, 0));
    }

    #[test]
    fn patch_ids_are_unique_across_frames_and_patches() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for video in 0..3u32 {
            for frame in 0..100u32 {
                for patch in 0..40u32 {
                    assert!(seen.insert(patch_id(video, frame, patch)));
                }
            }
        }
    }

    #[test]
    fn ingest_populates_database_and_keyframes() {
        let videos = small_collection();
        let config = LovoConfig::default();
        let summarizer = VideoSummarizer::new(&config).unwrap();
        let db = VectorDatabase::new();
        let (stats, keyframes) = summarizer.ingest(&videos, &db).unwrap();
        assert_eq!(stats.total_frames, videos.total_frames());
        assert!(stats.key_frames > 0 && stats.key_frames <= stats.total_frames);
        assert!(stats.patches_indexed >= stats.key_frames);
        assert_eq!(keyframes.len(), stats.key_frames);
        assert_eq!(db.metadata_rows(), stats.patches_indexed);
        assert!(stats.total_seconds() > 0.0);
    }

    #[test]
    fn keyframe_policy_reduces_indexed_patches() {
        let videos = small_collection();
        let db_kf = VectorDatabase::new();
        let db_all = VectorDatabase::new();
        let with_kf = VideoSummarizer::new(&LovoConfig::default()).unwrap();
        let without_kf = VideoSummarizer::new(&LovoConfig::ablation_without_keyframe()).unwrap();
        let (kf_stats, _) = with_kf.ingest(&videos, &db_kf).unwrap();
        let (all_stats, _) = without_kf.ingest(&videos, &db_all).unwrap();
        assert!(all_stats.key_frames > kf_stats.key_frames);
        assert!(all_stats.patches_indexed > kf_stats.patches_indexed);
    }

    #[test]
    fn objectness_filter_shrinks_collection() {
        let videos = small_collection();
        let config = LovoConfig {
            min_objectness: 0.05,
            ..LovoConfig::default()
        };
        let filtered = VideoSummarizer::new(&config).unwrap();
        let db_filtered = VectorDatabase::new();
        let (filtered_stats, _) = filtered.ingest(&videos, &db_filtered).unwrap();

        let unfiltered = VideoSummarizer::new(&LovoConfig::default()).unwrap();
        let db_all = VectorDatabase::new();
        let (all_stats, _) = unfiltered.ingest(&videos, &db_all).unwrap();
        assert!(filtered_stats.patches_indexed < all_stats.patches_indexed);
    }
}
