//! The plan executor: runs [`QueryPlan`]s produced by the
//! [`crate::planner::QueryPlanner`] against a built [`Lovo`] system.
//!
//! One implementation serves every entry point — `Lovo::query`,
//! `Lovo::query_with_k`, `Lovo::query_spec` and `Lovo::query_batch` are all
//! thin wrappers over the crate-private `execute_batch`. The stages mirror
//! [`crate::planner::PlanStage`]:
//!
//! 1. **encode** — every text in the batch is encoded up front;
//! 2. **prune** — each plan's compiled predicate is resolved into a
//!    pushed-down filter (video-only predicates compile to an id bit test;
//!    time/class predicates join the metadata table once); provably-empty
//!    plans short-circuit to an empty result here;
//! 3. **coarse** — all remaining queries fan out over the storage segments
//!    *together* in one batched pass (one collection lock acquisition, one
//!    segment walk shared by the batch), each with its own filter;
//! 4. **rerank** — the cross-modality transformer re-scores each query's
//!    candidate frames;
//! 5. **aggregate** — frames are grouped, truncated and assembled into
//!    [`QueryResult`]s with per-stage timings.

use crate::engine::{Lovo, QueryResult, QueryTimings, RankedObject};
use crate::planner::QueryPlan;
use crate::summary::{split_patch_id, PATCH_COLLECTION};
use crate::{LovoError, Result};
use lovo_encoder::cross_modality::CandidateFrame;
use lovo_encoder::{QueryEmbedding, RerankedFrame};
use lovo_index::SearchStats;
use lovo_store::{BatchQuery, JoinedHit, PushdownFilter};
use lovo_video::bbox::BoundingBox;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::time::Instant;

/// One coarse-stage candidate patch in shard-portable form: the packed patch
/// id, its fast-search score, the patch's bounding box, and the owning key
/// frame's timestamp when the producing engine has published that key frame.
///
/// The shard router's coarse responses carry these across the router↔shard
/// boundary; the single-engine executor builds the same values internally,
/// so both paths aggregate through one implementation — which is what makes
/// sharded answers bit-identical to single-engine ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoarseHit {
    /// Packed patch id (video / frame / patch, see `lovo_store::patch_id`).
    pub patch_id: u64,
    /// Fast-search similarity score of this patch.
    pub score: f32,
    /// The patch's bounding box.
    pub bbox: BoundingBox,
    /// Timestamp of the owning key frame in seconds, or `None` when the
    /// producing engine has not (yet) published the key frame — consumers
    /// skip such frames exactly as the single-engine ablation path does.
    pub timestamp: Option<f64>,
}

/// One candidate key frame after coarse hits are grouped: the frame key, its
/// best fast-search score and box (the rerank seed), and the frame's
/// timestamp when known. Produced by [`group_hits_by_frame`]; the shard
/// router ships these back to each frame's owning shard for the rerank
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameSeed {
    /// Video the frame belongs to.
    pub video_id: u32,
    /// Key-frame index within the video.
    pub frame_index: u32,
    /// Best fast-search score among the frame's candidate patches.
    pub score: f32,
    /// Bounding box of the best-scoring candidate patch (the rerank seed).
    pub bbox: BoundingBox,
    /// Timestamp of the key frame in seconds, when known to the producer.
    pub timestamp: Option<f64>,
}

/// The coarse candidate order: score descending, packed patch id ascending —
/// the same total order the segment-level top-k merge uses, exposed as a
/// comparator so the shard router can merge concatenated per-shard lists
/// into exactly the sequence a single engine's fast search would return.
pub fn coarse_hit_order(a: &CoarseHit, b: &CoarseHit) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.patch_id.cmp(&b.patch_id))
}

/// The reranked output order: cross-modality score descending, then frame
/// index, then video id — the exact sort `rerank_with_constraints` applies
/// internally, exposed so the shard router's merge of per-shard reranked
/// lists reproduces the single-engine sequence.
pub fn reranked_order(a: &RankedObject, b: &RankedObject) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.frame_index.cmp(&b.frame_index))
        .then_with(|| a.video_id.cmp(&b.video_id))
}

/// The ablation (rerank-disabled) output order: fast-search score
/// descending, then `(video id, frame index)` ascending.
pub fn unreranked_order(a: &RankedObject, b: &RankedObject) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| (a.video_id, a.frame_index).cmp(&(b.video_id, b.frame_index)))
}

/// Merges per-shard coarse top-k lists into the global top-`k`, in the order
/// a single engine's fast search would return them ([`coarse_hit_order`]).
/// Correct because each shard returns *its* top-`k` under the same total
/// order, and every member of the global top-`k` residing on shard `s` is
/// necessarily in `s`'s local top-`k`.
pub fn merge_coarse(lists: Vec<Vec<CoarseHit>>, k: usize) -> Vec<CoarseHit> {
    let mut merged: Vec<CoarseHit> = lists.into_iter().flatten().collect();
    merged.sort_by(coarse_hit_order);
    merged.truncate(k);
    merged
}

/// Merges per-shard reranked result lists into the global output
/// ([`reranked_order`], truncated to `output_frames`). Exact because the
/// cross-modality model scores each frame independently and frames are
/// partitioned across shards, so the union of per-shard sorted lists is a
/// permutation-free merge of the single-engine list.
pub fn merge_reranked(lists: Vec<Vec<RankedObject>>, output_frames: usize) -> Vec<RankedObject> {
    let mut merged: Vec<RankedObject> = lists.into_iter().flatten().collect();
    merged.sort_by(reranked_order);
    merged.truncate(output_frames);
    merged
}

/// Groups coarse candidates (given best-first) into candidate frames: one
/// seed per key frame, listed in order of each frame's best patch's rank,
/// keeping the best score/box per frame (strictly-greater wins, so on score
/// ties the earlier — smaller-patch-id — box is kept). The single-engine
/// executor and the shard router both group through this one function,
/// which is what makes their frame ordering identical.
pub fn group_hits_by_frame(hits: &[CoarseHit]) -> Vec<FrameSeed> {
    let mut order: Vec<(u32, u32)> = Vec::new();
    let mut best: HashMap<(u32, u32), FrameSeed> = HashMap::new();
    for hit in hits {
        let (video_id, frame_index, _) = split_patch_id(hit.patch_id);
        let key = (video_id, frame_index);
        match best.get_mut(&key) {
            Some(existing) => {
                if hit.score > existing.score {
                    existing.score = hit.score;
                    existing.bbox = hit.bbox;
                }
                if existing.timestamp.is_none() {
                    existing.timestamp = hit.timestamp;
                }
            }
            None => {
                best.insert(
                    key,
                    FrameSeed {
                        video_id,
                        frame_index,
                        score: hit.score,
                        bbox: hit.bbox,
                        timestamp: hit.timestamp,
                    },
                );
                order.push(key);
            }
        }
    }
    order
        .iter()
        .filter_map(|key| best.get(key).copied())
        .collect()
}

/// Assembles the ablation (rerank-disabled) output from grouped frame seeds:
/// frames whose timestamp is unknown (key frame unpublished on the producing
/// engine) are skipped, the rest are sorted by [`unreranked_order`] and
/// truncated to `output_frames`.
pub fn assemble_unreranked(seeds: &[FrameSeed], output_frames: usize) -> Vec<RankedObject> {
    let mut ranked: Vec<RankedObject> = seeds
        .iter()
        .filter_map(|seed| {
            seed.timestamp.map(|timestamp| RankedObject {
                video_id: seed.video_id,
                frame_index: seed.frame_index,
                timestamp,
                score: seed.score,
                bbox: seed.bbox,
            })
        })
        .collect();
    ranked.sort_by(unreranked_order);
    ranked.truncate(output_frames);
    ranked
}

fn coarse_hit_from_joined(hit: &JoinedHit, timestamp: Option<f64>) -> CoarseHit {
    CoarseHit {
        patch_id: hit.patch_id,
        score: hit.score,
        bbox: BoundingBox::new(
            hit.record.bbox.0,
            hit.record.bbox.1,
            hit.record.bbox.2,
            hit.record.bbox.3,
        ),
        timestamp,
    }
}

/// Multi-engine plan execution entry points: one engine acting as a *shard*
/// runs a routed plan in two halves — the coarse stage against its local
/// segments, and the rerank stage over the frames the router assigned back
/// to it. Both take an already-compiled [`QueryPlan`] (compiled once at the
/// router), and both encode the query text locally: encoding is
/// content-deterministic, so every shard derives the same embedding the
/// router's twin engine would.
impl Lovo {
    /// Runs a plan's encode + prune + coarse stages against this engine
    /// only, returning candidate patches in fast-search order together with
    /// the work counters. Each hit carries its key frame's timestamp so a
    /// router can assemble rerank-disabled results without touching this
    /// engine again. Provably-empty plans return no candidates without
    /// searching. `intra_query_threads` sizes the segment fan-out (`0` =
    /// automatic).
    pub fn coarse_plan(
        &self,
        plan: &QueryPlan,
        intra_query_threads: usize,
    ) -> Result<(Vec<CoarseHit>, SearchStats)> {
        if plan.provably_empty {
            return Ok((Vec::new(), SearchStats::default()));
        }
        let embedding = self.text_encoder.encode(&plan.text)?;
        let filter: Option<PushdownFilter> = if plan.patch_predicate.is_unconstrained() {
            None
        } else {
            self.database.resolve_filter(&plan.patch_predicate)
        };
        let request = BatchQuery {
            query: embedding.embedding.as_slice(),
            k: plan.fast_search_k,
            filter: filter.as_ref(),
        };
        let mut results = self.database.search_batch_with_stats_opts(
            PATCH_COLLECTION,
            std::slice::from_ref(&request),
            intra_query_threads,
        )?;
        let (hits, stats) = results.pop().unwrap_or_default();
        let keyframes = self.keyframes.read();
        let coarse = hits
            .iter()
            .map(|hit| {
                let (video_id, frame_index, _) = split_patch_id(hit.patch_id);
                let timestamp = keyframes
                    .get(&(video_id, frame_index))
                    .map(|frame| frame.timestamp);
                coarse_hit_from_joined(hit, timestamp)
            })
            .collect();
        Ok((coarse, stats))
    }

    /// Runs a plan's rerank stage over the given candidate frames on this
    /// engine: frames whose key frame this engine does not hold are skipped
    /// (exactly as the single-engine path skips unpublished frames), and the
    /// reranked list comes back sorted by [`reranked_order`] but
    /// *untruncated* — the router applies the output budget globally after
    /// merging every shard's list.
    pub fn rerank_plan(&self, plan: &QueryPlan, seeds: &[FrameSeed]) -> Result<Vec<RankedObject>> {
        let embedding = self.text_encoder.encode(&plan.text)?;
        let keyframes = self.keyframes.read();
        let candidates: Vec<CandidateFrame<'_>> = seeds
            .iter()
            .filter_map(|seed| {
                keyframes
                    .get(&(seed.video_id, seed.frame_index))
                    .map(|frame| CandidateFrame {
                        video_id: seed.video_id,
                        frame,
                        seed_box: Some(seed.bbox),
                    })
            })
            .collect();
        let reranked: Vec<RerankedFrame> = self
            .rerank
            .rerank_with_constraints(&embedding.parsed, &candidates)?;
        Ok(reranked
            .into_iter()
            .map(|r| RankedObject {
                video_id: r.video_id,
                frame_index: r.frame_index as u32,
                timestamp: r.timestamp,
                score: r.score,
                bbox: r.bbox,
            })
            .collect())
    }
}

/// Executes a single plan.
pub(crate) fn execute(lovo: &Lovo, plan: &QueryPlan) -> Result<QueryResult> {
    let mut results = execute_batch(lovo, std::slice::from_ref(plan))?;
    results
        .pop()
        .ok_or_else(|| LovoError::InvalidState("executor returned no result for plan".into()))
}

/// Executes a batch of plans, sharing the encode pass and the segment
/// fan-out across the whole batch. Results come back in plan order.
pub(crate) fn execute_batch(lovo: &Lovo, plans: &[QueryPlan]) -> Result<Vec<QueryResult>> {
    execute_batch_opts(lovo, plans, 0)
}

/// [`execute_batch`] with an explicit intra-query fan-out worker count for
/// the coarse stage (`0` = automatic sizing in the storage layer).
pub(crate) fn execute_batch_opts(
    lovo: &Lovo,
    plans: &[QueryPlan],
    intra_query_threads: usize,
) -> Result<Vec<QueryResult>> {
    // --- Stage 1: encode every query text up front (§VI-A). ---
    let mut timings = vec![QueryTimings::default(); plans.len()];
    let mut embeddings: Vec<QueryEmbedding> = Vec::with_capacity(plans.len());
    for (plan, timing) in plans.iter().zip(&mut timings) {
        let start = Instant::now();
        embeddings.push(lovo.text_encoder.encode(&plan.text)?);
        timing.text_encoding_seconds = start.elapsed().as_secs_f64();
    }

    // --- Stage 2: prune — resolve each compiled predicate into a pushed-down
    // filter. Provably-empty plans stop here. Plans sharing one predicate
    // (the common shape of a batch: many texts, one scope) share one
    // resolution — the metadata join runs once per *distinct* predicate, not
    // once per query.
    let mut resolved: Vec<PushdownFilter> = Vec::new();
    // Predicate that first resolved each slot.
    let mut resolved_pred: Vec<&lovo_store::PatchPredicate> = Vec::new();
    let mut plan_filter: Vec<Option<usize>> = Vec::with_capacity(plans.len());
    for (plan, timing) in plans.iter().zip(&mut timings) {
        let start = Instant::now();
        let mut slot = None;
        if !plan.provably_empty && !plan.patch_predicate.is_unconstrained() {
            slot = resolved_pred
                .iter()
                .position(|&first| *first == plan.patch_predicate);
            if slot.is_none() {
                if let Some(filter) = lovo.database.resolve_filter(&plan.patch_predicate) {
                    resolved.push(filter);
                    resolved_pred.push(&plan.patch_predicate);
                    slot = Some(resolved.len() - 1);
                }
            }
        }
        if plan.is_filtered() {
            timing.prune_seconds = start.elapsed().as_secs_f64();
        }
        plan_filter.push(slot);
    }

    // --- Stage 3: coarse filtered search, batched (Algorithm 1). ---
    // All searchable plans fan out over the segments together; the batch's
    // wall-clock is attributed evenly since the pass is shared.
    let mut search_positions: Vec<usize> = Vec::new();
    let mut requests: Vec<BatchQuery<'_>> = Vec::new();
    for (position, ((plan, embedding), slot)) in
        plans.iter().zip(&embeddings).zip(&plan_filter).enumerate()
    {
        if plan.provably_empty {
            continue;
        }
        search_positions.push(position);
        requests.push(BatchQuery {
            query: embedding.embedding.as_slice(),
            k: plan.fast_search_k,
            filter: slot.and_then(|s| resolved.get(s)),
        });
    }
    let mut coarse: Vec<Option<(Vec<JoinedHit>, SearchStats)>> =
        plans.iter().map(|_| None).collect();
    if !requests.is_empty() {
        let search_start = Instant::now();
        let batch_results = lovo.database.search_batch_with_stats_opts(
            PATCH_COLLECTION,
            &requests,
            intra_query_threads,
        )?;
        let shared_seconds = search_start.elapsed().as_secs_f64() / requests.len() as f64;
        for (&position, result) in search_positions.iter().zip(batch_results) {
            // The positions were collected over these same vectors just
            // above, so the lookups cannot miss; `.get` keeps the hot path
            // structurally panic-free all the same.
            if let (Some(timing), Some(slot)) =
                (timings.get_mut(position), coarse.get_mut(position))
            {
                timing.fast_search_seconds = shared_seconds;
                *slot = Some(result);
            }
        }
    }

    // --- Stages 4 + 5: rerank and aggregate, per query. ---
    plans
        .iter()
        .zip(embeddings)
        .zip(coarse)
        .zip(timings)
        .map(|(((plan, embedding), searched), mut timing)| {
            let (hits, stats) = searched.unwrap_or_default();
            finish(lovo, plan, &embedding, hits, stats, &mut timing)
        })
        .collect()
}

/// Stages 4 (rerank) and 5 (aggregate) for one query: group candidate
/// patches by key frame, rerank the strongest frames, and assemble the
/// result.
fn finish(
    lovo: &Lovo,
    plan: &QueryPlan,
    embedding: &QueryEmbedding,
    hits: Vec<JoinedHit>,
    search_stats: SearchStats,
    timing: &mut QueryTimings,
) -> Result<QueryResult> {
    let fast_search_candidates = hits.len();

    // Group candidate patches by their key frame through the shared
    // implementation (the shard router groups through the same function, so
    // frame ordering is identical in both serving shapes). Timestamps are
    // attached lazily below, under the key-frame lock, only on the path
    // that needs them.
    let coarse: Vec<CoarseHit> = hits
        .iter()
        .map(|hit| coarse_hit_from_joined(hit, None))
        .collect();
    let mut seeds = group_hits_by_frame(&coarse);

    // Bound the expensive rerank stage: `seeds` lists frames in order of
    // their best patch's fast-search rank (the search returns patches
    // best-first and a frame is recorded at its first patch), so truncation
    // keeps the strongest candidate frames.
    if plan.enable_rerank {
        seeds.truncate(plan.rerank_frames);
    }

    // Hold the key-frame read lock across the rerank: candidates borrow
    // frames straight from the shared map. Readers never block each other;
    // ingest merges (the only writers) are short.
    let keyframes = lovo.keyframes.read();
    let rerank_start = Instant::now();
    let frames = if plan.enable_rerank {
        let candidates: Vec<CandidateFrame<'_>> = seeds
            .iter()
            .filter_map(|seed| {
                keyframes
                    .get(&(seed.video_id, seed.frame_index))
                    .map(|frame| CandidateFrame {
                        video_id: seed.video_id,
                        frame,
                        seed_box: Some(seed.bbox),
                    })
            })
            .collect();
        let reranked: Vec<RerankedFrame> = lovo
            .rerank
            .rerank_with_constraints(&embedding.parsed, &candidates)?;
        reranked
            .into_iter()
            .take(plan.output_frames)
            .map(|r| RankedObject {
                video_id: r.video_id,
                frame_index: r.frame_index as u32,
                timestamp: r.timestamp,
                score: r.score,
                bbox: r.bbox,
            })
            .collect()
    } else {
        // Ablation: return the fast-search frame order directly. Frames
        // whose key frame is not in the map (a query racing an append, see
        // `Lovo::add_videos`) are skipped — their timestamp stays `None` —
        // exactly as the rerank path skips them, not emitted with a
        // fabricated timestamp.
        for seed in &mut seeds {
            seed.timestamp = keyframes
                .get(&(seed.video_id, seed.frame_index))
                .map(|frame| frame.timestamp);
        }
        assemble_unreranked(&seeds, plan.output_frames)
    };
    timing.rerank_seconds = if plan.enable_rerank {
        rerank_start.elapsed().as_secs_f64()
    } else {
        0.0
    };

    Ok(QueryResult {
        query: plan.text.clone(),
        reranked_frames: if plan.enable_rerank { seeds.len() } else { 0 },
        frames,
        fast_search_candidates,
        timings: *timing,
        search_stats,
    })
}
