//! The plan executor: runs [`QueryPlan`]s produced by the
//! [`crate::planner::QueryPlanner`] against a built [`Lovo`] system.
//!
//! One implementation serves every entry point — `Lovo::query`,
//! `Lovo::query_with_k`, `Lovo::query_spec` and `Lovo::query_batch` are all
//! thin wrappers over the crate-private `execute_batch`. The stages mirror
//! [`crate::planner::PlanStage`]:
//!
//! 1. **encode** — every text in the batch is encoded up front;
//! 2. **prune** — each plan's compiled predicate is resolved into a
//!    pushed-down filter (video-only predicates compile to an id bit test;
//!    time/class predicates join the metadata table once); provably-empty
//!    plans short-circuit to an empty result here;
//! 3. **coarse** — all remaining queries fan out over the storage segments
//!    *together* in one batched pass (one collection lock acquisition, one
//!    segment walk shared by the batch), each with its own filter;
//! 4. **rerank** — the cross-modality transformer re-scores each query's
//!    candidate frames;
//! 5. **aggregate** — frames are grouped, truncated and assembled into
//!    [`QueryResult`]s with per-stage timings.

use crate::engine::{Lovo, QueryResult, QueryTimings, RankedObject};
use crate::planner::QueryPlan;
use crate::summary::{split_patch_id, PATCH_COLLECTION};
use crate::{LovoError, Result};
use lovo_encoder::cross_modality::CandidateFrame;
use lovo_encoder::{QueryEmbedding, RerankedFrame};
use lovo_index::SearchStats;
use lovo_store::{BatchQuery, JoinedHit, PushdownFilter};
use lovo_video::bbox::BoundingBox;
use std::time::Instant;

/// Executes a single plan.
pub(crate) fn execute(lovo: &Lovo, plan: &QueryPlan) -> Result<QueryResult> {
    let mut results = execute_batch(lovo, std::slice::from_ref(plan))?;
    results
        .pop()
        .ok_or_else(|| LovoError::InvalidState("executor returned no result for plan".into()))
}

/// Executes a batch of plans, sharing the encode pass and the segment
/// fan-out across the whole batch. Results come back in plan order.
pub(crate) fn execute_batch(lovo: &Lovo, plans: &[QueryPlan]) -> Result<Vec<QueryResult>> {
    execute_batch_opts(lovo, plans, 0)
}

/// [`execute_batch`] with an explicit intra-query fan-out worker count for
/// the coarse stage (`0` = automatic sizing in the storage layer).
pub(crate) fn execute_batch_opts(
    lovo: &Lovo,
    plans: &[QueryPlan],
    intra_query_threads: usize,
) -> Result<Vec<QueryResult>> {
    // --- Stage 1: encode every query text up front (§VI-A). ---
    let mut timings = vec![QueryTimings::default(); plans.len()];
    let mut embeddings: Vec<QueryEmbedding> = Vec::with_capacity(plans.len());
    for (plan, timing) in plans.iter().zip(&mut timings) {
        let start = Instant::now();
        embeddings.push(lovo.text_encoder.encode(&plan.text)?);
        timing.text_encoding_seconds = start.elapsed().as_secs_f64();
    }

    // --- Stage 2: prune — resolve each compiled predicate into a pushed-down
    // filter. Provably-empty plans stop here. Plans sharing one predicate
    // (the common shape of a batch: many texts, one scope) share one
    // resolution — the metadata join runs once per *distinct* predicate, not
    // once per query.
    let mut resolved: Vec<PushdownFilter> = Vec::new();
    // Predicate that first resolved each slot.
    let mut resolved_pred: Vec<&lovo_store::PatchPredicate> = Vec::new();
    let mut plan_filter: Vec<Option<usize>> = Vec::with_capacity(plans.len());
    for (plan, timing) in plans.iter().zip(&mut timings) {
        let start = Instant::now();
        let mut slot = None;
        if !plan.provably_empty && !plan.patch_predicate.is_unconstrained() {
            slot = resolved_pred
                .iter()
                .position(|&first| *first == plan.patch_predicate);
            if slot.is_none() {
                if let Some(filter) = lovo.database.resolve_filter(&plan.patch_predicate) {
                    resolved.push(filter);
                    resolved_pred.push(&plan.patch_predicate);
                    slot = Some(resolved.len() - 1);
                }
            }
        }
        if plan.is_filtered() {
            timing.prune_seconds = start.elapsed().as_secs_f64();
        }
        plan_filter.push(slot);
    }

    // --- Stage 3: coarse filtered search, batched (Algorithm 1). ---
    // All searchable plans fan out over the segments together; the batch's
    // wall-clock is attributed evenly since the pass is shared.
    let mut search_positions: Vec<usize> = Vec::new();
    let mut requests: Vec<BatchQuery<'_>> = Vec::new();
    for (position, ((plan, embedding), slot)) in
        plans.iter().zip(&embeddings).zip(&plan_filter).enumerate()
    {
        if plan.provably_empty {
            continue;
        }
        search_positions.push(position);
        requests.push(BatchQuery {
            query: embedding.embedding.as_slice(),
            k: plan.fast_search_k,
            filter: slot.and_then(|s| resolved.get(s)),
        });
    }
    let mut coarse: Vec<Option<(Vec<JoinedHit>, SearchStats)>> =
        plans.iter().map(|_| None).collect();
    if !requests.is_empty() {
        let search_start = Instant::now();
        let batch_results = lovo.database.search_batch_with_stats_opts(
            PATCH_COLLECTION,
            &requests,
            intra_query_threads,
        )?;
        let shared_seconds = search_start.elapsed().as_secs_f64() / requests.len() as f64;
        for (&position, result) in search_positions.iter().zip(batch_results) {
            // The positions were collected over these same vectors just
            // above, so the lookups cannot miss; `.get` keeps the hot path
            // structurally panic-free all the same.
            if let (Some(timing), Some(slot)) =
                (timings.get_mut(position), coarse.get_mut(position))
            {
                timing.fast_search_seconds = shared_seconds;
                *slot = Some(result);
            }
        }
    }

    // --- Stages 4 + 5: rerank and aggregate, per query. ---
    plans
        .iter()
        .zip(embeddings)
        .zip(coarse)
        .zip(timings)
        .map(|(((plan, embedding), searched), mut timing)| {
            let (hits, stats) = searched.unwrap_or_default();
            finish(lovo, plan, &embedding, hits, stats, &mut timing)
        })
        .collect()
}

/// Stages 4 (rerank) and 5 (aggregate) for one query: group candidate
/// patches by key frame, rerank the strongest frames, and assemble the
/// result.
fn finish(
    lovo: &Lovo,
    plan: &QueryPlan,
    embedding: &QueryEmbedding,
    hits: Vec<JoinedHit>,
    search_stats: SearchStats,
    timing: &mut QueryTimings,
) -> Result<QueryResult> {
    let fast_search_candidates = hits.len();

    // Group candidate patches by their key frame, remembering the best
    // fast-search score and box per frame.
    let mut frame_order: Vec<(u32, u32)> = Vec::new();
    let mut best_per_frame: std::collections::HashMap<(u32, u32), (f32, BoundingBox)> =
        std::collections::HashMap::new();
    for hit in &hits {
        let (video_id, frame_index, _) = split_patch_id(hit.patch_id);
        let key = (video_id, frame_index);
        let bbox = BoundingBox::new(
            hit.record.bbox.0,
            hit.record.bbox.1,
            hit.record.bbox.2,
            hit.record.bbox.3,
        );
        match best_per_frame.get_mut(&key) {
            Some(existing) => {
                if hit.score > existing.0 {
                    *existing = (hit.score, bbox);
                }
            }
            None => {
                best_per_frame.insert(key, (hit.score, bbox));
                frame_order.push(key);
            }
        }
    }

    // Bound the expensive rerank stage: `frame_order` lists frames in order
    // of their best patch's fast-search rank (the search returns patches
    // best-first and a frame is recorded at its first patch), so truncation
    // keeps the strongest candidate frames.
    if plan.enable_rerank {
        frame_order.truncate(plan.rerank_frames);
    }

    // Hold the key-frame read lock across the rerank: candidates borrow
    // frames straight from the shared map. Readers never block each other;
    // ingest merges (the only writers) are short.
    let keyframes = lovo.keyframes.read();
    let rerank_start = Instant::now();
    let frames = if plan.enable_rerank {
        let candidates: Vec<CandidateFrame<'_>> = frame_order
            .iter()
            .filter_map(|key| {
                keyframes.get(key).map(|frame| CandidateFrame {
                    video_id: key.0,
                    frame,
                    seed_box: best_per_frame.get(key).map(|(_, b)| *b),
                })
            })
            .collect();
        let reranked: Vec<RerankedFrame> = lovo
            .rerank
            .rerank_with_constraints(&embedding.parsed, &candidates)?;
        reranked
            .into_iter()
            .take(plan.output_frames)
            .map(|r| RankedObject {
                video_id: r.video_id,
                frame_index: r.frame_index as u32,
                timestamp: r.timestamp,
                score: r.score,
                bbox: r.bbox,
            })
            .collect()
    } else {
        // Ablation: return the fast-search frame order directly. Frames
        // whose key frame is not in the map (a query racing an append, see
        // `Lovo::add_videos`) are skipped here exactly as the rerank path
        // skips them — not emitted with a fabricated timestamp.
        let mut ranked: Vec<RankedObject> = frame_order
            .iter()
            .filter_map(|key| {
                let (score, bbox) = *best_per_frame.get(key)?;
                let frame = keyframes.get(key)?;
                Some(RankedObject {
                    video_id: key.0,
                    frame_index: key.1,
                    timestamp: frame.timestamp,
                    score,
                    bbox,
                })
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.video_id, a.frame_index).cmp(&(b.video_id, b.frame_index)))
        });
        ranked.truncate(plan.output_frames);
        ranked
    };
    timing.rerank_seconds = if plan.enable_rerank {
        rerank_start.elapsed().as_secs_f64()
    } else {
        0.0
    };

    Ok(QueryResult {
        query: plan.text.clone(),
        reranked_frames: if plan.enable_rerank {
            frame_order.len()
        } else {
            0
        },
        frames,
        fast_search_candidates,
        timings: *timing,
        search_stats,
    })
}
