//! # lovo-core
//!
//! The LOVO system: efficient complex object query in large-scale video
//! datasets (ICDE 2025).
//!
//! LOVO is organized into the three modules of Fig. 3 of the paper, and so is
//! this crate:
//!
//! 1. **Video Summary** ([`summary`]) — one-time, query-agnostic processing:
//!    key-frame extraction, per-patch visual encoding, object localization,
//!    and construction of the vector collection `I = {(f_j, {(c_jk, b_jk)})}`.
//! 2. **Database Storage** — the collection is stored in the vector database
//!    (`lovo-store`) under product quantization + inverted multi-index
//!    (`lovo-index`), with bounding boxes / frame ids in the relational
//!    metadata table, joined by patch id.
//! 3. **Query Strategy** ([`engine`], [`planner`], [`exec`]) — every query
//!    goes through one plan → execute pipeline: the [`planner::QueryPlanner`]
//!    compiles `(text, predicate, k)` into a staged plan (encode → prune →
//!    coarse filtered search → rerank → aggregate) and the executor runs it,
//!    pushing metadata predicates (video subsets, time windows, object
//!    classes) down through the storage fan-out into every index scan.
//!    [`Lovo::query_batch`] executes many specs in one shared fan-out pass.
//!
//! The entry point is [`Lovo`]: build it once over a video collection, then
//! issue as many queries as you like.
//!
//! ```
//! use lovo_core::{Lovo, LovoConfig};
//! use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};
//!
//! let videos = VideoCollection::generate(
//!     DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(120),
//! );
//! let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
//! let result = lovo.query("a red car driving in the center of the road").unwrap();
//! assert!(result.frames.len() <= lovo.config().output_frames);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod exec;
pub mod planner;
pub mod summary;

pub use config::LovoConfig;
pub use engine::{Lovo, QueryResult, QueryTimings, RankedObject};
pub use exec::{
    assemble_unreranked, coarse_hit_order, group_hits_by_frame, merge_coarse, merge_reranked,
    reranked_order, unreranked_order, CoarseHit, FrameSeed,
};
pub use planner::{PlanStage, QueryPlan, QueryPlanner, QuerySpec};
pub use summary::{IngestStats, VideoSummarizer};

/// Re-exported so serving layers can aggregate per-shard work counters
/// without depending on `lovo-index` directly.
pub use lovo_index::SearchStats;

// The compiled storage-level predicate is a public field of `QueryPlan`;
// re-exported so plan consumers (e.g. `lovo-serve`) need not depend on
// `lovo-store` directly.
pub use lovo_store::PatchPredicate;

// Durable-store vocabulary used by `Lovo::build_durable` / `Lovo::open`,
// re-exported for the same reason.
pub use lovo_store::{DurabilityConfig, FsyncPolicy, QuarantinedSegment, RecoveryReport};

/// Errors surfaced by the LOVO system.
#[derive(Debug)]
pub enum LovoError {
    /// Encoder failure.
    Encoder(lovo_encoder::EncoderError),
    /// Storage / index failure.
    Store(lovo_store::StoreError),
    /// The system is not in a state to serve the request.
    InvalidState(String),
}

impl std::fmt::Display for LovoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LovoError::Encoder(e) => write!(f, "encoder error: {e}"),
            LovoError::Store(e) => write!(f, "storage error: {e}"),
            LovoError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for LovoError {}

impl From<lovo_encoder::EncoderError> for LovoError {
    fn from(e: lovo_encoder::EncoderError) -> Self {
        LovoError::Encoder(e)
    }
}

impl From<lovo_store::StoreError> for LovoError {
    fn from(e: lovo_store::StoreError) -> Self {
        LovoError::Store(e)
    }
}

impl From<lovo_index::IndexError> for LovoError {
    fn from(e: lovo_index::IndexError) -> Self {
        LovoError::Store(lovo_store::StoreError::Index(e))
    }
}

/// Result alias for LOVO operations.
pub type Result<T> = std::result::Result<T, LovoError>;
