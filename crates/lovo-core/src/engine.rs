//! The LOVO system façade and the two-stage Query Strategy (§VI).

use crate::config::LovoConfig;
use crate::summary::{split_patch_id, IngestStats, KeyframeMap, VideoSummarizer, PATCH_COLLECTION};
use crate::{LovoError, Result};
use lovo_encoder::cross_modality::CandidateFrame;
use lovo_encoder::{CrossModalityTransformer, RerankedFrame, TextEncoder};
use lovo_index::SearchStats;
use lovo_store::VectorDatabase;
use lovo_video::bbox::BoundingBox;
use lovo_video::VideoCollection;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-clock timings of one query, split by stage (Fig. 9 reports these).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryTimings {
    /// Text encoding seconds.
    pub text_encoding_seconds: f64,
    /// Fast-search (index probe) seconds.
    pub fast_search_seconds: f64,
    /// Cross-modality rerank seconds.
    pub rerank_seconds: f64,
}

impl QueryTimings {
    /// Total user-perceived search latency.
    pub fn total_seconds(&self) -> f64 {
        self.text_encoding_seconds + self.fast_search_seconds + self.rerank_seconds
    }
}

/// One ranked object returned to the user: a frame plus the grounded box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedObject {
    /// Video the frame belongs to.
    pub video_id: u32,
    /// Frame index within the video.
    pub frame_index: u32,
    /// Timestamp of the frame in seconds.
    pub timestamp: f64,
    /// Relevance score (cross-modality score when rerank is enabled,
    /// fast-search similarity otherwise).
    pub score: f32,
    /// Bounding box of the matched object in the frame.
    pub bbox: BoundingBox,
}

/// Result of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The query text.
    pub query: String,
    /// Ranked output frames (best first), at most `output_frames` of them.
    pub frames: Vec<RankedObject>,
    /// Number of candidate patches the fast search returned.
    pub fast_search_candidates: usize,
    /// Number of distinct frames the rerank stage scored.
    pub reranked_frames: usize,
    /// Per-stage wall-clock timings.
    pub timings: QueryTimings,
    /// Index probe statistics of the fast search.
    pub search_stats: SearchStats,
}

/// The LOVO system: built once over a video collection, queried many times.
pub struct Lovo {
    config: LovoConfig,
    database: VectorDatabase,
    keyframes: KeyframeMap,
    text_encoder: TextEncoder,
    rerank: CrossModalityTransformer,
    ingest_stats: IngestStats,
}

impl Lovo {
    /// Builds the system: runs the video-summary pipeline over `videos`,
    /// stores the vector collection and metadata, and prepares the query-time
    /// models.
    pub fn build(videos: &VideoCollection, config: LovoConfig) -> Result<Self> {
        config.validate().map_err(LovoError::InvalidState)?;
        let summarizer = VideoSummarizer::new(&config)?;
        let database = VectorDatabase::new();
        let (ingest_stats, keyframes) = summarizer.ingest(videos, &database)?;
        Ok(Self {
            text_encoder: TextEncoder::new(config.text)?,
            rerank: CrossModalityTransformer::new(config.cross_modality)?,
            config,
            database,
            keyframes,
            ingest_stats,
        })
    }

    /// The system configuration.
    pub fn config(&self) -> &LovoConfig {
        &self.config
    }

    /// Statistics of the one-time video-summary / indexing phase.
    pub fn ingest_stats(&self) -> &IngestStats {
        &self.ingest_stats
    }

    /// Number of patch embeddings stored in the vector collection.
    pub fn indexed_patches(&self) -> usize {
        self.database
            .collection_stats(PATCH_COLLECTION)
            .map(|s| s.entities)
            .unwrap_or(0)
    }

    /// Approximate storage footprint in bytes (index + metadata).
    pub fn storage_bytes(&self) -> usize {
        self.database.total_bytes()
    }

    /// Borrow the underlying vector database (used by storage experiments).
    pub fn database(&self) -> &VectorDatabase {
        &self.database
    }

    /// Answers a complex object query with the two-stage strategy of
    /// Algorithm 2, returning the top `output_frames` frames with boxes.
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        self.query_with_k(text, self.config.fast_search_k)
    }

    /// Like [`Lovo::query`] but with an explicit fast-search candidate count
    /// (the scalability experiments sweep this).
    pub fn query_with_k(&self, text: &str, fast_search_k: usize) -> Result<QueryResult> {
        let mut timings = QueryTimings::default();

        // --- Stage 1a: encode the query text (§VI-A). ---
        let text_start = Instant::now();
        let query_embedding = self.text_encoder.encode(text)?;
        timings.text_encoding_seconds = text_start.elapsed().as_secs_f64();

        // --- Stage 1b: fast search over the vector database (Algorithm 1). ---
        let search_start = Instant::now();
        let (hits, search_stats) = self.database.search_with_stats(
            PATCH_COLLECTION,
            &query_embedding.embedding,
            fast_search_k,
        )?;
        timings.fast_search_seconds = search_start.elapsed().as_secs_f64();
        let fast_search_candidates = hits.len();

        // Group candidate patches by their key frame, remembering the best
        // fast-search score and box per frame.
        let mut frame_order: Vec<(u32, u32)> = Vec::new();
        let mut best_per_frame: std::collections::HashMap<(u32, u32), (f32, BoundingBox)> =
            std::collections::HashMap::new();
        for hit in &hits {
            let (video_id, frame_index, _) = split_patch_id(hit.patch_id);
            let key = (video_id, frame_index);
            let bbox = BoundingBox::new(
                hit.record.bbox.0,
                hit.record.bbox.1,
                hit.record.bbox.2,
                hit.record.bbox.3,
            );
            match best_per_frame.get_mut(&key) {
                Some(existing) => {
                    if hit.score > existing.0 {
                        *existing = (hit.score, bbox);
                    }
                }
                None => {
                    best_per_frame.insert(key, (hit.score, bbox));
                    frame_order.push(key);
                }
            }
        }

        // Bound the expensive rerank stage: `frame_order` lists frames in
        // order of their best patch's fast-search rank (the search returns
        // patches best-first and a frame is recorded at its first patch), so
        // truncation keeps the strongest candidate frames.
        if self.config.enable_rerank {
            frame_order.truncate(self.config.rerank_frames);
        }

        // --- Stage 2: cross-modality rerank over the candidate frames. ---
        let rerank_start = Instant::now();
        let frames = if self.config.enable_rerank {
            let candidates: Vec<CandidateFrame<'_>> = frame_order
                .iter()
                .filter_map(|key| {
                    self.keyframes.get(key).map(|frame| CandidateFrame {
                        video_id: key.0,
                        frame,
                        seed_box: best_per_frame.get(key).map(|(_, b)| *b),
                    })
                })
                .collect();
            let reranked: Vec<RerankedFrame> = self
                .rerank
                .rerank_with_constraints(&query_embedding.parsed, &candidates)?;
            reranked
                .into_iter()
                .take(self.config.output_frames)
                .map(|r| RankedObject {
                    video_id: r.video_id,
                    frame_index: r.frame_index as u32,
                    timestamp: r.timestamp,
                    score: r.score,
                    bbox: r.bbox,
                })
                .collect()
        } else {
            // Ablation: return the fast-search frame order directly.
            let mut ranked: Vec<RankedObject> = frame_order
                .iter()
                .map(|key| {
                    let (score, bbox) = best_per_frame[key];
                    let timestamp = self
                        .keyframes
                        .get(key)
                        .map(|f| f.timestamp)
                        .unwrap_or_default();
                    RankedObject {
                        video_id: key.0,
                        frame_index: key.1,
                        timestamp,
                        score,
                        bbox,
                    }
                })
                .collect();
            ranked.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            ranked.truncate(self.config.output_frames);
            ranked
        };
        timings.rerank_seconds = if self.config.enable_rerank {
            rerank_start.elapsed().as_secs_f64()
        } else {
            0.0
        };

        Ok(QueryResult {
            query: text.to_string(),
            reranked_frames: if self.config.enable_rerank {
                frame_order.len()
            } else {
                0
            },
            frames,
            fast_search_candidates,
            timings,
            search_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_index::IndexKind;
    use lovo_video::{DatasetConfig, DatasetKind};

    fn bellevue(frames: usize) -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(frames)
                .with_seed(11),
        )
    }

    #[test]
    fn build_and_query_end_to_end() {
        let videos = bellevue(240);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        assert!(lovo.indexed_patches() > 0);
        assert!(lovo.storage_bytes() > 0);

        let result = lovo
            .query("a red car driving in the center of the road")
            .unwrap();
        assert!(!result.frames.is_empty());
        assert!(result.frames.len() <= lovo.config().output_frames);
        assert!(result.fast_search_candidates > 0);
        // Scores sorted descending.
        for pair in result.frames.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        assert!(result.timings.total_seconds() > 0.0);
        assert!(result.timings.rerank_seconds > 0.0);
    }

    #[test]
    fn top_ranked_frame_contains_the_queried_object() {
        let videos = bellevue(400);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let query_text = "a red car driving in the center of the road";
        let result = lovo.query(query_text).unwrap();
        let constraints = lovo_encoder::TextEncoder::parse(query_text);

        // At least one of the top-3 frames must contain an object satisfying
        // the query's ground-truth constraints.
        let hit = result.frames.iter().take(3).any(|ranked| {
            videos.videos[ranked.video_id as usize].frames[ranked.frame_index as usize]
                .objects
                .iter()
                .any(|o| constraints.matches(&o.attributes))
        });
        assert!(hit, "no relevant object in the top-3 frames");
    }

    #[test]
    fn rerank_ablation_skips_stage_two() {
        let videos = bellevue(180);
        let lovo = Lovo::build(&videos, LovoConfig::ablation_without_rerank()).unwrap();
        let result = lovo.query("a bus driving on the road").unwrap();
        assert_eq!(result.reranked_frames, 0);
        assert_eq!(result.timings.rerank_seconds, 0.0);
        assert!(!result.frames.is_empty());
    }

    #[test]
    fn brute_force_ablation_probes_every_vector() {
        let videos = bellevue(180);
        let anns = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let brute = Lovo::build(&videos, LovoConfig::ablation_without_anns()).unwrap();
        let q = "a red car driving in the center of the road";
        let anns_result = anns.query(q).unwrap();
        let brute_result = brute.query(q).unwrap();
        assert!(brute_result.search_stats.vectors_scored >= brute.indexed_patches());
        assert!(
            anns_result.search_stats.vectors_scored < brute_result.search_stats.vectors_scored,
            "ANNS should probe fewer vectors ({} vs {})",
            anns_result.search_stats.vectors_scored,
            brute_result.search_stats.vectors_scored
        );
    }

    #[test]
    fn hnsw_index_variant_works() {
        let videos = bellevue(150);
        let lovo = Lovo::build(
            &videos,
            LovoConfig::default().with_index_kind(IndexKind::Hnsw),
        )
        .unwrap();
        let result = lovo.query("a bus driving on the road").unwrap();
        assert!(!result.frames.is_empty());
    }

    #[test]
    fn rerank_budget_caps_reranked_frames() {
        let videos = bellevue(240);
        let lovo = Lovo::build(&videos, LovoConfig::default().with_rerank_frames(3)).unwrap();
        let result = lovo.query("a red car on the road").unwrap();
        assert!(result.reranked_frames <= 3);
        assert!(!result.frames.is_empty());
    }

    #[test]
    fn query_with_smaller_k_reduces_candidates() {
        let videos = bellevue(240);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let small = lovo.query_with_k("a red car on the road", 10).unwrap();
        let large = lovo.query_with_k("a red car on the road", 200).unwrap();
        assert!(small.fast_search_candidates <= 10);
        assert!(large.fast_search_candidates <= 200);
        assert!(large.fast_search_candidates >= small.fast_search_candidates);
    }

    #[test]
    fn invalid_config_is_rejected_at_build() {
        let videos = bellevue(60);
        let mut config = LovoConfig::default();
        config.text.class_dim = 8;
        assert!(Lovo::build(&videos, config).is_err());
    }
}
