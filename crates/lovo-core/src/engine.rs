//! The LOVO system façade and the two-stage Query Strategy (§VI).
//!
//! Since the planner refactor, every query entry point routes through one
//! **plan → execute** pipeline: [`crate::planner::QueryPlanner`] compiles the
//! spec (text, predicate, k) into a staged [`crate::planner::QueryPlan`] and
//! [`crate::exec`] runs it — encode → prune → coarse filtered search →
//! rerank → aggregate — recording per-stage timings.

use crate::config::LovoConfig;
use crate::planner::{QueryPlan, QueryPlanner, QuerySpec};
use crate::summary::{IngestStats, KeyframeMap, VideoSummarizer, PATCH_COLLECTION};
use crate::{exec, LovoError, Result};
use lovo_encoder::{CrossModalityTransformer, TextEncoder};
use lovo_index::SearchStats;
use lovo_store::{DurabilityConfig, RecoveryReport, VectorDatabase};
use lovo_video::bbox::BoundingBox;
use lovo_video::VideoCollection;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

/// Wall-clock timings of one query, split by stage (Fig. 9 reports these).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryTimings {
    /// Serve-side wait seconds: time the query spent in a serving layer's
    /// admission queue plus its micro-batch coalescing window before the
    /// engine started executing. Always zero when the engine is called
    /// directly; `lovo-serve` stamps it so queue/batch latency is
    /// distinguishable from engine time in [`QueryResult::breakdown`].
    pub queue_seconds: f64,
    /// Text encoding seconds.
    pub text_encoding_seconds: f64,
    /// Predicate-pushdown seconds: compiling the metadata predicate into the
    /// id filter + zone-map ranges (includes the metadata join for time and
    /// class predicates). Zero for unfiltered queries.
    pub prune_seconds: f64,
    /// Fast-search (index probe) seconds.
    pub fast_search_seconds: f64,
    /// Cross-modality rerank seconds.
    pub rerank_seconds: f64,
}

impl QueryTimings {
    /// Total user-perceived search latency (including any serve-side wait).
    pub fn total_seconds(&self) -> f64 {
        self.queue_seconds
            + self.text_encoding_seconds
            + self.prune_seconds
            + self.fast_search_seconds
            + self.rerank_seconds
    }

    /// Serve-side wait (queue + batch window) in milliseconds.
    pub fn wait_ms(&self) -> f64 {
        self.queue_seconds * 1e3
    }

    /// Text-encoding stage in milliseconds.
    pub fn encode_ms(&self) -> f64 {
        self.text_encoding_seconds * 1e3
    }

    /// Predicate-pushdown stage in milliseconds.
    pub fn prune_ms(&self) -> f64 {
        self.prune_seconds * 1e3
    }

    /// Coarse (fast-search) stage in milliseconds.
    pub fn coarse_ms(&self) -> f64 {
        self.fast_search_seconds * 1e3
    }

    /// Rerank stage in milliseconds.
    pub fn rerank_ms(&self) -> f64 {
        self.rerank_seconds * 1e3
    }
}

/// One ranked object returned to the user: a frame plus the grounded box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedObject {
    /// Video the frame belongs to.
    pub video_id: u32,
    /// Frame index within the video.
    pub frame_index: u32,
    /// Timestamp of the frame in seconds.
    pub timestamp: f64,
    /// Relevance score (cross-modality score when rerank is enabled,
    /// fast-search similarity otherwise).
    pub score: f32,
    /// Bounding box of the matched object in the frame.
    pub bbox: BoundingBox,
}

/// Result of one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The query text.
    pub query: String,
    /// Ranked output frames (best first), at most `output_frames` of them.
    pub frames: Vec<RankedObject>,
    /// Number of candidate patches the fast search returned.
    pub fast_search_candidates: usize,
    /// Number of distinct frames the rerank stage scored.
    pub reranked_frames: usize,
    /// Per-stage wall-clock timings.
    pub timings: QueryTimings,
    /// Index probe statistics of the fast search (including
    /// `segments_pruned` / `segments_probed` and `filtered_out` when a
    /// predicate was pushed down).
    pub search_stats: SearchStats,
}

impl QueryResult {
    /// One-line per-stage latency breakdown, e.g.
    /// `wait 0.40ms | encode 0.12ms | prune 0.00ms | coarse 1.40ms |
    /// rerank 3.25ms | segments 1 pruned / 3 probed / 0 parallel`. The
    /// leading `wait` is the serve-side queue + batch-window latency — zero
    /// unless the query went through a serving layer such as `lovo-serve`;
    /// the trailing `parallel` counts segments scanned by intra-query
    /// fan-out workers (zero for a sequential scan).
    pub fn breakdown(&self) -> String {
        format!(
            "wait {:.2}ms | encode {:.2}ms | prune {:.2}ms | coarse {:.2}ms | rerank {:.2}ms | \
             segments {} pruned / {} probed / {} parallel",
            self.timings.wait_ms(),
            self.timings.encode_ms(),
            self.timings.prune_ms(),
            self.timings.coarse_ms(),
            self.timings.rerank_ms(),
            self.search_stats.segments_pruned,
            self.search_stats.segments_probed,
            self.search_stats.parallel_segments,
        )
    }
}

/// The LOVO system: built over an initial video collection, extended with
/// [`Lovo::add_videos`] as new footage arrives, queried many times.
///
/// Every method takes `&self`: queries, incremental ingest, and compaction
/// are all safe to call concurrently from many threads (e.g. through an
/// `Arc<Lovo>` owned by a serving layer). Mutable ingest state lives behind
/// internal locks; the vector database has always been internally
/// synchronized.
pub struct Lovo {
    pub(crate) config: LovoConfig,
    pub(crate) database: VectorDatabase,
    /// Key frames retained for the rerank stage. Writers (ingest) merge an
    /// already-built batch map in one short critical section, so query
    /// readers never wait behind encoding work.
    pub(crate) keyframes: RwLock<KeyframeMap>,
    pub(crate) text_encoder: TextEncoder,
    pub(crate) rerank: CrossModalityTransformer,
    planner: QueryPlanner,
    summarizer: VideoSummarizer,
    /// Cumulative statistics across the initial build and every append.
    ingest_stats: Mutex<IngestStats>,
    /// Video ids already ingested; appends of the same id are rejected
    /// because their patch ids would collide. Ids are reserved atomically per
    /// batch, which also serializes duplicate detection between concurrent
    /// appends.
    ingested_videos: Mutex<std::collections::HashSet<u32>>,
}

impl Lovo {
    /// Builds the system: runs the video-summary pipeline over `videos`,
    /// stores the vector collection and metadata, and prepares the query-time
    /// models.
    pub fn build(videos: &VideoCollection, config: LovoConfig) -> Result<Self> {
        config.validate().map_err(LovoError::InvalidState)?;
        let ingested_videos = unique_video_ids(videos, &std::collections::HashSet::new())?;
        let summarizer = VideoSummarizer::new(&config)?;
        let database = VectorDatabase::new();
        let (ingest_stats, keyframes) = summarizer.ingest(videos, &database)?;
        Ok(Self {
            text_encoder: TextEncoder::new(config.text)?,
            rerank: CrossModalityTransformer::new(config.cross_modality)?,
            planner: QueryPlanner::new(config),
            ingested_videos: Mutex::new(ingested_videos),
            summarizer,
            config,
            database,
            keyframes: RwLock::new(keyframes),
            ingest_stats: Mutex::new(ingest_stats),
        })
    }

    /// [`Lovo::build`] over a durable store rooted at `root`: every ingested
    /// batch is write-ahead logged (with its serialized key frames riding
    /// along) and sealed segments land in checksummed files, so the system
    /// survives `kill -9` and reopens with [`Lovo::open`]. Fails if `root`
    /// already holds a store.
    pub fn build_durable(
        videos: &VideoCollection,
        config: LovoConfig,
        root: impl AsRef<std::path::Path>,
        durability: DurabilityConfig,
    ) -> Result<Self> {
        config.validate().map_err(LovoError::InvalidState)?;
        let ingested_videos = unique_video_ids(videos, &std::collections::HashSet::new())?;
        let summarizer = VideoSummarizer::new(&config)?;
        let database = VectorDatabase::create_durable(root, durability)?;
        let (ingest_stats, keyframes) = summarizer.ingest(videos, &database)?;
        Ok(Self {
            text_encoder: TextEncoder::new(config.text)?,
            rerank: CrossModalityTransformer::new(config.cross_modality)?,
            planner: QueryPlanner::new(config),
            ingested_videos: Mutex::new(ingested_videos),
            summarizer,
            config,
            database,
            keyframes: RwLock::new(keyframes),
            ingest_stats: Mutex::new(ingest_stats),
        })
    }

    /// Reopens a durable store created by [`Lovo::build_durable`] and
    /// rebuilds the full engine state from disk: vectors and metadata from
    /// the sealed segments plus the WAL, the rerank key-frame map from the
    /// persisted frame blobs, and the ingested-video set from the metadata
    /// table — no footage is re-read or re-encoded. Returns the storage
    /// layer's [`RecoveryReport`] so callers can surface quarantined
    /// segments or torn WAL tails.
    ///
    /// `config` must describe the same embedding dimensionality the store
    /// was built under; anything else would make every stored vector
    /// unsearchable, so it is rejected up front as an invalid state.
    pub fn open(
        config: LovoConfig,
        root: impl AsRef<std::path::Path>,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        // The default open consults LOVO_MMAP / LOVO_MMAP_POPULATE, so the
        // zero-copy read path can be switched on without code changes.
        let recovered = VectorDatabase::open_durable(root, durability)?;
        Self::from_reopened(config, recovered)
    }

    /// [`Lovo::open`] with explicit storage read-path options: with
    /// `options.mmap` on, sealed-segment rows are served zero-copy from the
    /// mapped segment files — opening is O(headers), and the row payload
    /// lives in evictable page cache instead of the heap, which is what
    /// lets a corpus larger than RAM keep serving. See
    /// [`lovo_store::OpenOptions`]; consider [`Lovo::warmup`] after an
    /// mmap open that skipped `populate`.
    pub fn open_with(
        config: LovoConfig,
        root: impl AsRef<std::path::Path>,
        durability: DurabilityConfig,
        options: lovo_store::OpenOptions,
    ) -> Result<(Self, RecoveryReport)> {
        let recovered = VectorDatabase::open_durable_with(root, durability, options)?;
        Self::from_reopened(config, recovered)
    }

    fn from_reopened(
        config: LovoConfig,
        (database, mut report): (VectorDatabase, RecoveryReport),
    ) -> Result<(Self, RecoveryReport)> {
        config.validate().map_err(LovoError::InvalidState)?;
        let summarizer = VideoSummarizer::new(&config)?;
        if let Some(dim) = database.collection_dim(PATCH_COLLECTION) {
            let expected = summarizer.encoder().config().class_dim;
            if dim != expected {
                return Err(LovoError::InvalidState(format!(
                    "store was built with {dim}-dimensional embeddings but the \
                     configuration produces {expected}-dimensional ones"
                )));
            }
        }
        // Rebuild the rerank frame map from the recovered blobs. A blob that
        // fails to decode is skipped rather than fatal — queries touching
        // that frame lose their rerank candidate (the executor already
        // tolerates missing key frames), which mirrors how the storage layer
        // quarantines rather than refuses.
        let mut keyframes = KeyframeMap::new();
        for (frame_key, blob) in std::mem::take(&mut report.aux_blobs) {
            let (video_id, frame_index) = ((frame_key >> 32) as u32, frame_key as u32);
            if let Ok(frame) = lovo_video::wire::decode_frame(&blob) {
                keyframes.insert((video_id, frame_index), frame);
            }
        }
        // Video ids must stay reserved across restarts — re-ingesting an id
        // would collide patch ids with the recovered rows.
        let ingested_videos: std::collections::HashSet<u32> =
            database.video_ids().into_iter().collect();
        Ok((
            Self {
                text_encoder: TextEncoder::new(config.text)?,
                rerank: CrossModalityTransformer::new(config.cross_modality)?,
                planner: QueryPlanner::new(config),
                ingested_videos: Mutex::new(ingested_videos),
                summarizer,
                config,
                database,
                keyframes: RwLock::new(keyframes),
                ingest_stats: Mutex::new(IngestStats::default()),
            },
            report,
        ))
    }

    /// Incrementally ingests a new batch of videos: encodes only the new
    /// footage, appends its patches to the vector collection's growing
    /// segment(s), and seals — existing sealed segments are never rebuilt, so
    /// append cost is proportional to the batch, not the collection. Returns
    /// this run's statistics; [`Lovo::ingest_stats`] keeps the running total.
    ///
    /// Safe to call concurrently with queries (and with other appends —
    /// batches land in the shared growing segment in arrival order). A query
    /// racing an append may observe the batch's vectors a moment before its
    /// key frames are merged; such frames are skipped from that query's
    /// results. The ingest epoch is bumped once more *after* the key frames
    /// merge, so an epoch-keyed result cache cannot keep serving a result
    /// computed inside that window.
    pub fn add_videos(&self, videos: &VideoCollection) -> Result<IngestStats> {
        // Reserve the ids before ingesting: a mid-run failure can leave part
        // of the batch in the store, and a retry under the same ids would
        // silently collide patch ids. A failed batch's ids stay reserved —
        // re-submit the footage under fresh ids. The single lock scope makes
        // reservation atomic between concurrent appends.
        {
            let mut ingested = self.ingested_videos.lock();
            let batch_ids = unique_video_ids(videos, &ingested)?;
            ingested.extend(batch_ids);
        }
        // Encode into a batch-local key-frame map so the shared map's write
        // lock is held only for the final merge, not the (expensive)
        // encoding — queries keep reranking against the pre-append map while
        // the batch encodes.
        let mut batch_keyframes = KeyframeMap::new();
        let run = self
            .summarizer
            .ingest_into(videos, &self.database, &mut batch_keyframes)?;
        self.keyframes.write().extend(batch_keyframes);
        // The batch's vectors became searchable (and bumped the epoch)
        // before its key frames merged; a result computed in that window is
        // missing the new frames. One more bump now marks any such result
        // stale for epoch-keyed caches.
        self.database.touch_collection(PATCH_COLLECTION)?;
        self.ingest_stats.lock().accumulate(&run);
        Ok(run)
    }

    /// Merges undersized sealed storage segments to bound the search fan-out
    /// width after many small appends.
    pub fn compact(&self) -> Result<lovo_store::CompactionResult> {
        Ok(self.database.compact_collection(PATCH_COLLECTION)?)
    }

    /// Seals the patch collection's growing segment (builds its ANN index),
    /// leaving a fresh empty buffer. No-op when nothing is buffered. Ingest
    /// seals after every batch, so this mainly serves background maintenance
    /// (e.g. `lovo-serve`) mopping up rows left by direct database writes.
    pub fn seal(&self) -> Result<()> {
        Ok(self.database.seal_collection(PATCH_COLLECTION)?)
    }

    /// The system configuration.
    pub fn config(&self) -> &LovoConfig {
        &self.config
    }

    /// Cumulative statistics of the video-summary / indexing phase across the
    /// initial build and every incremental append (a snapshot — appends
    /// running on other threads keep accumulating).
    pub fn ingest_stats(&self) -> IngestStats {
        *self.ingest_stats.lock()
    }

    /// The ingest epoch of the patch collection: a monotonically increasing
    /// counter bumped by every content mutation (insert, seal, compaction).
    /// Result caches key their invalidation off this — an entry computed at
    /// epoch `e` is served only while `ingest_epoch()` still returns `e`.
    pub fn ingest_epoch(&self) -> u64 {
        self.database
            .collection_generation(PATCH_COLLECTION)
            .unwrap_or(0)
    }

    /// Inclusive video-id range covered by the stored patch collection —
    /// the segment zone maps folded up to engine level — or `None` while
    /// nothing is indexed. A shard router reads this as a zone map one level
    /// up: an engine whose range cannot intersect a plan's video predicate
    /// is pruned from the scatter without being searched.
    pub fn video_id_range(&self) -> Option<(u32, u32)> {
        self.database.collection_video_range(PATCH_COLLECTION)
    }

    /// Storage statistics of the patch collection (segment counts, build
    /// counts, byte sizes).
    pub fn collection_stats(&self) -> lovo_store::CollectionStats {
        self.database
            .collection_stats(PATCH_COLLECTION)
            .unwrap_or_default()
    }

    /// Number of patch embeddings stored in the vector collection.
    pub fn indexed_patches(&self) -> usize {
        self.database
            .collection_stats(PATCH_COLLECTION)
            .map(|s| s.entities)
            .unwrap_or(0)
    }

    /// Approximate storage footprint in bytes (index + metadata).
    pub fn storage_bytes(&self) -> usize {
        self.database.total_bytes()
    }

    /// Pre-faults every mapped sealed segment (`MADV_WILLNEED`), returning
    /// the bytes advised. Call once after an mmap [`Lovo::open_with`] to
    /// warm the page cache ahead of the first queries; a no-op (0) on the
    /// heap read path.
    pub fn warmup(&self) -> usize {
        self.database.warmup()
    }

    /// Drops every mapped sealed segment's resident pages
    /// (`MADV_DONTNEED`), returning the bytes advised — the inverse of
    /// [`Lovo::warmup`], used to bound page-cache footprint when the
    /// corpus outgrows memory.
    pub fn release_pages(&self) -> usize {
        self.database.release_pages()
    }

    /// Total bytes of live segment mappings (0 on the heap read path).
    pub fn mapped_bytes(&self) -> usize {
        self.database.mapped_bytes()
    }

    /// Bytes of mapped sealed segments currently resident in page cache —
    /// the serving-side gauge of how warm the mapped corpus is.
    pub fn resident_bytes(&self) -> usize {
        self.database.resident_bytes()
    }

    /// Borrow the underlying vector database (used by storage experiments).
    pub fn database(&self) -> &VectorDatabase {
        &self.database
    }

    /// The query planner this system compiles specs with (exposed so callers
    /// can inspect a plan — [`QueryPlan::describe`] — without running it).
    pub fn planner(&self) -> &QueryPlanner {
        &self.planner
    }

    /// Compiles a spec into its executable plan without running it.
    pub fn plan(&self, spec: &QuerySpec) -> QueryPlan {
        self.planner.plan(spec)
    }

    /// Answers a complex object query with the two-stage strategy of
    /// Algorithm 2, returning the top `output_frames` frames with boxes.
    /// Thin wrapper over the plan → execute pipeline.
    pub fn query(&self, text: &str) -> Result<QueryResult> {
        self.query_spec(&QuerySpec::new(text))
    }

    /// Like [`Lovo::query`] but with an explicit fast-search candidate count
    /// (the scalability experiments sweep this). Thin wrapper over the same
    /// plan path.
    pub fn query_with_k(&self, text: &str, fast_search_k: usize) -> Result<QueryResult> {
        self.query_spec(&QuerySpec::new(text).with_k(fast_search_k))
    }

    /// Answers a full query spec — text plus a metadata predicate restricting
    /// *where* to search (video subsets, time windows, object classes). The
    /// predicate is pushed down through the storage fan-out into every index
    /// scan, so selective queries touch a fraction of the corpus.
    pub fn query_spec(&self, spec: &QuerySpec) -> Result<QueryResult> {
        exec::execute(self, &self.planner.plan(spec))
    }

    /// Answers a batch of query specs in one pass: all texts are encoded up
    /// front and the coarse searches fan out over the storage segments
    /// *together* (one collection lock acquisition and one segment walk for
    /// the whole batch), amortizing per-query overheads under concurrent
    /// load. Results come back in spec order.
    pub fn query_batch(&self, specs: &[QuerySpec]) -> Result<Vec<QueryResult>> {
        let plans: Vec<QueryPlan> = specs.iter().map(|spec| self.planner.plan(spec)).collect();
        exec::execute_batch(self, &plans)
    }

    /// Executes a batch of already-compiled plans — [`Lovo::query_batch`]
    /// without the planning step. Serving layers that plan once per
    /// submission (to fingerprint it for their result cache) hand the same
    /// plans straight to execution here instead of re-planning.
    pub fn query_plans(&self, plans: &[QueryPlan]) -> Result<Vec<QueryResult>> {
        exec::execute_batch(self, plans)
    }

    /// [`Lovo::query_plans`] with an explicit intra-query fan-out worker
    /// count for the coarse search (`0` = automatic sizing). A serving layer
    /// under low load passes its idle worker capacity here, letting a lone
    /// query split its sealed segments across otherwise-idle cores instead
    /// of scanning them on one thread.
    pub fn query_plans_opts(
        &self,
        plans: &[QueryPlan],
        intra_query_threads: usize,
    ) -> Result<Vec<QueryResult>> {
        exec::execute_batch_opts(self, plans, intra_query_threads)
    }
}

/// Collects the batch's video ids, rejecting any id that already exists in
/// `ingested` or repeats within the batch itself — either way its patches
/// would silently collide (patch ids embed the video id).
fn unique_video_ids(
    videos: &VideoCollection,
    ingested: &std::collections::HashSet<u32>,
) -> Result<std::collections::HashSet<u32>> {
    let mut batch = std::collections::HashSet::with_capacity(videos.videos.len());
    for video in &videos.videos {
        if ingested.contains(&video.id) {
            return Err(LovoError::InvalidState(format!(
                "video id {} is already ingested; re-adding it would collide patch ids",
                video.id
            )));
        }
        if !batch.insert(video.id) {
            return Err(LovoError::InvalidState(format!(
                "video id {} appears twice in the batch; duplicate ids would collide patch ids",
                video.id
            )));
        }
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_index::IndexKind;
    use lovo_video::{DatasetConfig, DatasetKind};

    fn bellevue(frames: usize) -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(frames)
                .with_seed(11),
        )
    }

    #[test]
    fn build_and_query_end_to_end() {
        let videos = bellevue(240);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        assert!(lovo.indexed_patches() > 0);
        assert!(lovo.storage_bytes() > 0);

        let result = lovo
            .query("a red car driving in the center of the road")
            .unwrap();
        assert!(!result.frames.is_empty());
        assert!(result.frames.len() <= lovo.config().output_frames);
        assert!(result.fast_search_candidates > 0);
        // Scores sorted descending.
        for pair in result.frames.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        assert!(result.timings.total_seconds() > 0.0);
        assert!(result.timings.rerank_seconds > 0.0);
    }

    #[test]
    fn top_ranked_frame_contains_the_queried_object() {
        let videos = bellevue(400);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let query_text = "a red car driving in the center of the road";
        let result = lovo.query(query_text).unwrap();
        let constraints = lovo_encoder::TextEncoder::parse(query_text);

        // At least one of the top-3 frames must contain an object satisfying
        // the query's ground-truth constraints.
        let hit = result.frames.iter().take(3).any(|ranked| {
            videos.videos[ranked.video_id as usize].frames[ranked.frame_index as usize]
                .objects
                .iter()
                .any(|o| constraints.matches(&o.attributes))
        });
        assert!(hit, "no relevant object in the top-3 frames");
    }

    #[test]
    fn rerank_ablation_skips_stage_two() {
        let videos = bellevue(180);
        let lovo = Lovo::build(&videos, LovoConfig::ablation_without_rerank()).unwrap();
        let result = lovo.query("a bus driving on the road").unwrap();
        assert_eq!(result.reranked_frames, 0);
        assert_eq!(result.timings.rerank_seconds, 0.0);
        assert!(!result.frames.is_empty());
    }

    #[test]
    fn brute_force_ablation_probes_every_vector() {
        let videos = bellevue(180);
        let anns = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let brute = Lovo::build(&videos, LovoConfig::ablation_without_anns()).unwrap();
        let q = "a red car driving in the center of the road";
        let anns_result = anns.query(q).unwrap();
        let brute_result = brute.query(q).unwrap();
        assert!(brute_result.search_stats.vectors_scored >= brute.indexed_patches());
        assert!(
            anns_result.search_stats.vectors_scored < brute_result.search_stats.vectors_scored,
            "ANNS should probe fewer vectors ({} vs {})",
            anns_result.search_stats.vectors_scored,
            brute_result.search_stats.vectors_scored
        );
    }

    #[test]
    fn hnsw_index_variant_works() {
        let videos = bellevue(150);
        let lovo = Lovo::build(
            &videos,
            LovoConfig::default().with_index_kind(IndexKind::Hnsw),
        )
        .unwrap();
        let result = lovo.query("a bus driving on the road").unwrap();
        assert!(!result.frames.is_empty());
    }

    #[test]
    fn rerank_budget_caps_reranked_frames() {
        let videos = bellevue(240);
        let lovo = Lovo::build(&videos, LovoConfig::default().with_rerank_frames(3)).unwrap();
        let result = lovo.query("a red car on the road").unwrap();
        assert!(result.reranked_frames <= 3);
        assert!(!result.frames.is_empty());
    }

    #[test]
    fn query_with_smaller_k_reduces_candidates() {
        let videos = bellevue(240);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let small = lovo.query_with_k("a red car on the road", 10).unwrap();
        let large = lovo.query_with_k("a red car on the road", 200).unwrap();
        assert!(small.fast_search_candidates <= 10);
        assert!(large.fast_search_candidates <= 200);
        assert!(large.fast_search_candidates >= small.fast_search_candidates);
    }

    fn bellevue_batch(frames: usize, seed: u64, id_offset: u32) -> VideoCollection {
        let mut batch = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(frames)
                .with_seed(seed),
        );
        for video in &mut batch.videos {
            video.id += id_offset;
        }
        batch
    }

    #[test]
    fn add_videos_appends_without_rebuilding_sealed_segments() {
        let first = bellevue(240);
        let lovo = Lovo::build(&first, LovoConfig::default()).unwrap();
        let stats_after_build = lovo.collection_stats();
        let patches_after_build = lovo.indexed_patches();
        assert!(stats_after_build.index_builds >= 1);

        let second = bellevue_batch(240, 23, first.videos.len() as u32);
        let run = lovo.add_videos(&second).unwrap();

        // The append sealed and built only its own segment(s).
        assert!(run.segments_sealed >= 1);
        assert_eq!(run.index_builds, run.segments_sealed);
        let stats_after_append = lovo.collection_stats();
        assert_eq!(
            stats_after_append.index_builds,
            stats_after_build.index_builds + run.index_builds
        );
        assert_eq!(
            stats_after_append.sealed_segments,
            stats_after_build.sealed_segments + run.segments_sealed
        );
        assert_eq!(
            lovo.indexed_patches(),
            patches_after_build + run.patches_indexed
        );
        // Cumulative stats folded the run in.
        assert_eq!(
            lovo.ingest_stats().patches_indexed,
            patches_after_build + run.patches_indexed
        );

        // Queries see footage from both batches.
        let result = lovo
            .query("a red car driving in the center of the road")
            .unwrap();
        assert!(!result.frames.is_empty());
    }

    #[test]
    fn incremental_build_matches_from_scratch_build() {
        // With brute-force segments the fan-out + merge is exact, so an
        // incremental build must rank frames identically to a from-scratch
        // build over the same combined data.
        let first = bellevue(200);
        let second = bellevue_batch(200, 31, first.videos.len() as u32);
        let mut combined = first.clone();
        combined.videos.extend(second.videos.iter().cloned());

        let config = LovoConfig::ablation_without_anns();
        let incremental = Lovo::build(&first, config).unwrap();
        incremental.add_videos(&second).unwrap();
        let scratch = Lovo::build(&combined, config).unwrap();

        assert_eq!(incremental.indexed_patches(), scratch.indexed_patches());
        for query in [
            "a red car driving in the center of the road",
            "a bus driving on the road",
        ] {
            let a = incremental.query(query).unwrap();
            let b = scratch.query(query).unwrap();
            let frames = |r: &QueryResult| -> Vec<(u32, u32)> {
                r.frames
                    .iter()
                    .map(|f| (f.video_id, f.frame_index))
                    .collect()
            };
            assert_eq!(frames(&a), frames(&b), "query: {query}");
        }
    }

    #[test]
    fn duplicate_video_ids_are_rejected_on_append() {
        let videos = bellevue(120);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let err = lovo.add_videos(&videos).unwrap_err();
        assert!(err.to_string().contains("already ingested"), "{err}");
    }

    #[test]
    fn duplicate_video_ids_within_one_batch_are_rejected() {
        let videos = bellevue(120);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        // A batch whose videos share one id: every patch id would collide.
        let mut batch = bellevue_batch(60, 19, videos.videos.len() as u32);
        let clone = batch.videos[0].clone();
        batch.videos.push(clone);
        let err = lovo.add_videos(&batch).unwrap_err();
        assert!(err.to_string().contains("appears twice"), "{err}");

        // Same guard at initial build.
        let mut dup = bellevue(60);
        let clone = dup.videos[0].clone();
        dup.videos.push(clone);
        let err = match Lovo::build(&dup, LovoConfig::default()) {
            Ok(_) => panic!("duplicate ids must be rejected at build"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("appears twice"), "{err}");
    }

    #[test]
    fn small_segment_capacity_splits_storage_and_still_answers() {
        let videos = bellevue(300);
        let lovo = Lovo::build(&videos, LovoConfig::default().with_segment_capacity(200)).unwrap();
        let stats = lovo.collection_stats();
        assert!(
            stats.sealed_segments > 1,
            "expected multiple segments, got {stats:?}"
        );
        let result = lovo
            .query("a red car driving in the center of the road")
            .unwrap();
        assert!(!result.frames.is_empty());
        assert_eq!(result.search_stats.segments_probed, stats.sealed_segments);
    }

    #[test]
    fn compaction_after_many_appends_narrows_fanout() {
        let first = bellevue(150);
        let lovo = Lovo::build(&first, LovoConfig::default()).unwrap();
        let mut offset = first.videos.len() as u32;
        for seed in [41u64, 43, 47] {
            let batch = bellevue_batch(150, seed, offset);
            offset += batch.videos.len() as u32;
            lovo.add_videos(&batch).unwrap();
        }
        let before = lovo.collection_stats();
        assert_eq!(before.sealed_segments, 4);
        let result = lovo.compact().unwrap();
        assert!(result.segments_merged >= 2, "{result:?}");
        let after = lovo.collection_stats();
        assert!(after.sealed_segments < before.sealed_segments);
        assert_eq!(after.entities, before.entities);
        let answer = lovo.query("a bus driving on the road").unwrap();
        assert!(!answer.frames.is_empty());
    }

    #[test]
    fn filtered_query_restricts_results_to_the_predicate() {
        use lovo_video::QueryPredicate;
        let videos = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_num_videos(3)
                .with_frames_per_video(150)
                .with_seed(11),
        );
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let spec = QuerySpec::new("a red car driving in the center of the road")
            .with_predicate(QueryPredicate::videos([1]));
        let result = lovo.query_spec(&spec).unwrap();
        assert!(!result.frames.is_empty());
        assert!(result.frames.iter().all(|f| f.video_id == 1));
        // The pushdown masked candidates from other videos inside the scans
        // (or pruned their segments outright).
        assert!(result.search_stats.filtered_out > 0 || result.search_stats.segments_pruned > 0);
    }

    #[test]
    fn provably_empty_predicate_searches_nothing() {
        use lovo_video::QueryPredicate;
        let videos = bellevue(120);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let spec = QuerySpec::new("a bus")
            .with_predicate(QueryPredicate::videos([0]).and(QueryPredicate::videos([1])));
        let plan = lovo.plan(&spec);
        assert!(plan.provably_empty);
        let result = lovo.query_spec(&spec).unwrap();
        assert!(result.frames.is_empty());
        assert_eq!(result.fast_search_candidates, 0);
        assert_eq!(result.search_stats.segments_probed, 0);
    }

    #[test]
    fn query_batch_matches_single_queries() {
        let videos = bellevue(240);
        // Brute-force segments make the fan-out exact, so batch and single
        // paths must rank identically.
        let lovo = Lovo::build(&videos, LovoConfig::ablation_without_anns()).unwrap();
        let specs = [
            QuerySpec::new("a red car driving in the center of the road"),
            QuerySpec::new("a bus driving on the road"),
            QuerySpec::new("a person walking on the sidewalk").with_k(50),
        ];
        let batch = lovo.query_batch(&specs).unwrap();
        assert_eq!(batch.len(), specs.len());
        for (spec, batched) in specs.iter().zip(&batch) {
            let single = lovo.query_spec(spec).unwrap();
            let frames = |r: &QueryResult| -> Vec<(u32, u32)> {
                r.frames
                    .iter()
                    .map(|f| (f.video_id, f.frame_index))
                    .collect()
            };
            assert_eq!(frames(batched), frames(&single), "spec: {}", spec.text);
            assert_eq!(
                batched.fast_search_candidates, single.fast_search_candidates,
                "spec: {}",
                spec.text
            );
        }
        assert!(lovo.query_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn plan_describes_its_stages() {
        let videos = bellevue(90);
        let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
        let unfiltered = lovo.plan(&QuerySpec::new("a car"));
        assert_eq!(
            unfiltered.describe(),
            "encode -> coarse(k=400) -> rerank(64) -> aggregate(20)"
        );
        let filtered = lovo.plan(
            &QuerySpec::new("a car")
                .with_predicate(lovo_video::QueryPredicate::time_range(0.0, 2.0)),
        );
        assert!(filtered.describe().contains("prune"));
        assert!(filtered.is_filtered());
    }

    #[test]
    fn invalid_config_is_rejected_at_build() {
        let videos = bellevue(60);
        let mut config = LovoConfig::default();
        config.text.class_dim = 8;
        assert!(Lovo::build(&videos, config).is_err());
    }
}
