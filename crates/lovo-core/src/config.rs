//! System configuration: every knob the evaluation sweeps or ablates.

use lovo_encoder::{CrossModalityConfig, TextEncoderConfig, VisualEncoderConfig};
use lovo_index::IndexKind;
use lovo_video::keyframe::KeyframePolicy;
use serde::{Deserialize, Serialize};

/// Configuration of a LOVO deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LovoConfig {
    /// Visual encoder parameters (§IV-B).
    pub visual: VisualEncoderConfig,
    /// Text encoder parameters (§VI-A).
    pub text: TextEncoderConfig,
    /// Cross-modality rerank transformer parameters (§VI-B).
    pub cross_modality: CrossModalityConfig,
    /// Key-frame selection policy (§IV-A). `AllFrames` reproduces the
    /// "w/o Key frame" ablation of Table IV.
    pub keyframe_policy: KeyframePolicy,
    /// Index family backing the vector collection (Table V). `BruteForce`
    /// reproduces the "w/o ANNS" ablation of Table IV.
    pub index_kind: IndexKind,
    /// Number of candidate patches retrieved by the fast search (the `k` of
    /// Algorithm 2, stage 1).
    pub fast_search_k: usize,
    /// Number of frames returned to the user (the `n` of Algorithm 2).
    pub output_frames: usize,
    /// Upper bound on the distinct candidate frames handed to the
    /// cross-modality rerank. The fast search may touch many frames (its `k`
    /// counts patches); the expensive transformer stage processes at most this
    /// many of them, best fast-search score first, which keeps per-query
    /// latency bounded as collections grow (Fig. 10).
    pub rerank_frames: usize,
    /// Whether the cross-modality rerank runs at all. `false` reproduces the
    /// "w/o Rerank" ablation of Table IV (fast-search order is returned).
    pub enable_rerank: bool,
    /// Only index patches whose objectness exceeds this threshold. Zero keeps
    /// every patch (including pure background), matching the paper's
    /// class-agnostic indexing; small values trade recall for index size.
    pub min_objectness: f32,
    /// Worker threads for the ingest-time visual encoding fan-out. `0` (the
    /// default) uses all available parallelism.
    pub ingest_workers: usize,
    /// Rows at which a growing storage segment seals and builds its ANN
    /// index. Bounds per-segment build cost for incremental ingest; smaller
    /// values seal more eagerly at the price of a wider search fan-out.
    pub segment_capacity: usize,
}

impl Default for LovoConfig {
    fn default() -> Self {
        Self {
            visual: VisualEncoderConfig::default(),
            text: TextEncoderConfig::default(),
            cross_modality: CrossModalityConfig::default(),
            keyframe_policy: KeyframePolicy::default(),
            index_kind: IndexKind::IvfPq,
            fast_search_k: 400,
            output_frames: 20,
            rerank_frames: 64,
            enable_rerank: true,
            min_objectness: 0.0,
            ingest_workers: 0,
            segment_capacity: lovo_store::DEFAULT_SEGMENT_CAPACITY,
        }
    }
}

impl LovoConfig {
    /// Builder-style override of the index family.
    pub fn with_index_kind(mut self, kind: IndexKind) -> Self {
        self.index_kind = kind;
        self
    }

    /// Builder-style override of the key-frame policy.
    pub fn with_keyframe_policy(mut self, policy: KeyframePolicy) -> Self {
        self.keyframe_policy = policy;
        self
    }

    /// Builder-style toggle of the rerank stage.
    pub fn with_rerank(mut self, enabled: bool) -> Self {
        self.enable_rerank = enabled;
        self
    }

    /// Builder-style override of the fast-search candidate count.
    pub fn with_fast_search_k(mut self, k: usize) -> Self {
        self.fast_search_k = k.max(1);
        self
    }

    /// Builder-style override of the number of output frames.
    pub fn with_output_frames(mut self, n: usize) -> Self {
        self.output_frames = n.max(1);
        self
    }

    /// Builder-style override of the rerank candidate-frame budget.
    pub fn with_rerank_frames(mut self, n: usize) -> Self {
        self.rerank_frames = n.max(1);
        self
    }

    /// Builder-style override of the ingest worker count (`0` = all
    /// available parallelism).
    pub fn with_ingest_workers(mut self, workers: usize) -> Self {
        self.ingest_workers = workers;
        self
    }

    /// Builder-style override of the storage segment capacity.
    pub fn with_segment_capacity(mut self, capacity: usize) -> Self {
        self.segment_capacity = capacity.max(1);
        self
    }

    /// The "w/o Rerank" ablation configuration of Table IV.
    pub fn ablation_without_rerank() -> Self {
        Self::default().with_rerank(false)
    }

    /// The "w/o ANNS" ablation configuration of Table IV (exhaustive search).
    pub fn ablation_without_anns() -> Self {
        Self::default().with_index_kind(IndexKind::BruteForce)
    }

    /// The "w/o Key frame" ablation configuration of Table IV (index every frame).
    pub fn ablation_without_keyframe() -> Self {
        Self::default().with_keyframe_policy(KeyframePolicy::AllFrames)
    }

    /// Checks internal consistency: the three model components must share the
    /// class-embedding dimension and seed so they live in one attribute space.
    pub fn validate(&self) -> Result<(), String> {
        if self.visual.class_dim != self.text.class_dim
            || self.visual.class_dim != self.cross_modality.class_dim
        {
            return Err(format!(
                "class_dim mismatch: visual {}, text {}, cross-modality {}",
                self.visual.class_dim, self.text.class_dim, self.cross_modality.class_dim
            ));
        }
        if self.visual.seed != self.text.seed || self.visual.seed != self.cross_modality.seed {
            return Err("visual, text and cross-modality seeds must match (shared space)".into());
        }
        if self.fast_search_k == 0 || self.output_frames == 0 || self.rerank_frames == 0 {
            return Err("fast_search_k, output_frames and rerank_frames must be positive".into());
        }
        if self.segment_capacity == 0 {
            return Err("segment_capacity must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(LovoConfig::default().validate().is_ok());
    }

    #[test]
    fn mismatched_dims_or_seeds_rejected() {
        let mut c = LovoConfig::default();
        c.text.class_dim = 16;
        assert!(c.validate().is_err());
        let mut c2 = LovoConfig::default();
        c2.text.seed = 999;
        assert!(c2.validate().is_err());
    }

    #[test]
    fn ablation_presets_flip_the_right_switch() {
        assert!(!LovoConfig::ablation_without_rerank().enable_rerank);
        assert_eq!(
            LovoConfig::ablation_without_anns().index_kind,
            IndexKind::BruteForce
        );
        assert_eq!(
            LovoConfig::ablation_without_keyframe().keyframe_policy,
            KeyframePolicy::AllFrames
        );
        // Each preset leaves the other switches at their defaults.
        assert!(LovoConfig::ablation_without_anns().enable_rerank);
    }

    #[test]
    fn builders_clamp_to_positive() {
        let c = LovoConfig::default()
            .with_fast_search_k(0)
            .with_output_frames(0)
            .with_segment_capacity(0);
        assert_eq!(c.fast_search_k, 1);
        assert_eq!(c.output_frames, 1);
        assert_eq!(c.segment_capacity, 1);
    }

    #[test]
    fn ingest_workers_zero_means_auto() {
        let c = LovoConfig::default();
        assert_eq!(c.ingest_workers, 0);
        assert!(c.validate().is_ok());
        assert_eq!(
            LovoConfig::default().with_ingest_workers(3).ingest_workers,
            3
        );
    }
}
