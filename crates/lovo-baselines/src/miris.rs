//! MIRIS-style QD-search baseline: query-driven object-track search.
//!
//! MIRIS answers each query by running (and tuning) detection/tracking models
//! over the video at query time. The analogue here mirrors that workflow:
//! per-query plan/parameter tuning (a large fixed cost), an accurate-detector
//! pass over a sampled subset of every video, an attribute-classifier pass
//! over the detections for queries with novel attributes, and track-level
//! aggregation. Relations and open-vocabulary details are not expressible —
//! detections that satisfy the class + attribute filters are returned whether
//! or not the relational part of the query holds, which is exactly the error
//! mode the paper reports for MIRIS on complex queries.

use crate::{finalize_hits, ObjectQuerySystem, PreprocessReport, QueryResponse, RankedHit};
use lovo_encoder::detector::AttributeClassifier;
use lovo_encoder::{DetectorConfig, SimulatedDetector};
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use std::time::Instant;

/// The MIRIS-style baseline.
pub struct Miris {
    detector: SimulatedDetector,
    classifier: AttributeClassifier,
    /// Every `sample_interval`-th frame is scanned at query time.
    sample_interval: usize,
    /// Modeled seconds of per-query plan and parameter tuning.
    plan_tuning_seconds: f64,
    /// Modeled per-frame tracking cost in milliseconds.
    tracking_ms_per_frame: f64,
}

impl Default for Miris {
    fn default() -> Self {
        Self::new()
    }
}

impl Miris {
    /// Creates the baseline with the paper-calibrated cost model.
    pub fn new() -> Self {
        Self {
            detector: SimulatedDetector::new(DetectorConfig::accurate()),
            classifier: AttributeClassifier::default(),
            sample_interval: 2,
            plan_tuning_seconds: 120.0,
            tracking_ms_per_frame: 5.0,
        }
    }
}

impl ObjectQuerySystem for Miris {
    fn name(&self) -> &'static str {
        "MIRIS"
    }

    fn preprocess(&mut self, _videos: &VideoCollection) -> PreprocessReport {
        // QD-search: no query-agnostic preprocessing beyond cheap decode setup.
        PreprocessReport {
            wall_seconds: 0.0,
            modeled_seconds: 2.0,
            frames_processed: 0,
        }
    }

    fn query(&self, videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse {
        let start = Instant::now();
        let constraints = &query.constraints;
        let wanted_label = constraints.class.and_then(|c| c.coco_label());

        let mut hits = Vec::new();
        let mut frames_scanned = 0usize;
        let mut objects_classified = 0usize;
        for video in &videos.videos {
            for frame in video.frames.iter().step_by(self.sample_interval.max(1)) {
                frames_scanned += 1;
                for det in self.detector.detect(frame) {
                    if let Some(label) = wanted_label {
                        if det.label != label {
                            continue;
                        }
                    }
                    // Attribute filters require the auxiliary classifier.
                    let mut score = det.confidence;
                    if let Some(src) = det.source_object {
                        let needs_attributes = constraints.color.is_some()
                            || constraints.size.is_some()
                            || constraints.activity.is_some()
                            || constraints.location.is_some();
                        if needs_attributes {
                            objects_classified += 1;
                            let predicted =
                                self.classifier
                                    .classify(frame.index, src, &frame.objects[src]);
                            let mut matched = 0f32;
                            let mut total = 0f32;
                            if let Some(color) = constraints.color {
                                total += 1.0;
                                if predicted.color == color {
                                    matched += 1.0;
                                }
                            }
                            if let Some(size) = constraints.size {
                                total += 1.0;
                                if predicted.size == size {
                                    matched += 1.0;
                                }
                            }
                            if let Some(activity) = constraints.activity {
                                total += 1.0;
                                if predicted.activity == activity {
                                    matched += 1.0;
                                }
                            }
                            if let Some(location) = constraints.location {
                                total += 1.0;
                                if location.accepts(&predicted.location) {
                                    matched += 1.0;
                                }
                            }
                            if total > 0.0 {
                                let fraction = matched / total;
                                if fraction < 0.99 {
                                    continue; // predicate-based filtering: all must hold
                                }
                                score *= fraction;
                            }
                        }
                    }
                    // Relations, accessories and unseen classes ("SUV") are not
                    // expressible in MIRIS plans; they are silently ignored.
                    hits.push(RankedHit {
                        video_id: video.id,
                        frame_index: frame.index as u32,
                        bbox: det.bbox,
                        score,
                    });
                }
            }
        }

        let modeled_seconds = self.plan_tuning_seconds
            + frames_scanned as f64
                * (self.detector.cost_per_frame_ms() + self.tracking_ms_per_frame)
                / 1000.0
            + objects_classified as f64 * self.classifier.cost_per_object_ms / 1000.0;

        QueryResponse {
            hits: finalize_hits(hits, top),
            wall_seconds: start.elapsed().as_secs_f64(),
            modeled_seconds,
            supported: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::{Color, DatasetConfig, DatasetKind, Location, ObjectClass};

    fn videos() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(150)
                .with_seed(9),
        )
    }

    fn red_center_query() -> ObjectQuery {
        ObjectQuery::new(
            "Q2.1",
            "A red car driving in the center of the road.",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                color: Some(Color::Red),
                location: Some(Location::RoadCenter),
                ..Default::default()
            },
            QueryComplexity::Normal,
        )
    }

    #[test]
    fn returns_hits_matching_class_and_attributes() {
        let collection = videos();
        let miris = Miris::new();
        let response = miris.query(&collection, &red_center_query(), 30);
        assert!(response.supported);
        assert!(!response.hits.is_empty());
        // Most returned frames should really contain a red car near the centre
        // (classifier accuracy is 0.85, so a few errors are expected).
        let correct = response
            .hits
            .iter()
            .filter(|hit| {
                collection.videos[hit.video_id as usize].frames[hit.frame_index as usize]
                    .objects
                    .iter()
                    .any(|o| red_center_query().constraints.matches(&o.attributes))
            })
            .count();
        assert!(
            correct * 2 >= response.hits.len(),
            "only {correct}/{} hits are correct",
            response.hits.len()
        );
    }

    #[test]
    fn per_query_cost_dominates_preprocessing() {
        let collection = videos();
        let mut miris = Miris::new();
        let pre = miris.preprocess(&collection);
        let response = miris.query(&collection, &red_center_query(), 10);
        assert!(response.modeled_seconds > pre.modeled_seconds * 10.0);
        assert!(response.modeled_seconds > 100.0, "plan tuning is expensive");
    }

    #[test]
    fn query_cost_scales_with_video_length() {
        let short = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(60),
        );
        let long = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(300),
        );
        let miris = Miris::new();
        let a = miris.query(&short, &red_center_query(), 10);
        let b = miris.query(&long, &red_center_query(), 10);
        assert!(b.modeled_seconds > a.modeled_seconds);
    }
}
