//! UMT-style end-to-end baseline: unified multi-modal moment retrieval.
//!
//! UMT retrieves *moments* (temporal windows), not object-level frames. The
//! analogue groups sampled frames into fixed-length moments, pools an
//! area-weighted frame embedding per moment (small objects nearly vanish,
//! the weakness the paper reports), scores moments against the query with a
//! cross-modal pass whose modeled cost scales with the number of moments,
//! and returns the frames of the best moments with frame-level boxes.

use crate::{finalize_hits, ObjectQuerySystem, PreprocessReport, QueryResponse, RankedHit};
use lovo_encoder::space::DetailLevel;
use lovo_encoder::{TextEncoder, TextEncoderConfig};
use lovo_tensor::ops::{dot, l2_normalize};
use lovo_video::bbox::BoundingBox;
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use std::time::Instant;

struct Moment {
    video_id: u32,
    frame_indices: Vec<u32>,
    embedding: Vec<f32>,
    frame_box: BoundingBox,
}

/// The UMT-style baseline.
pub struct Umt {
    text_encoder: TextEncoder,
    sample_interval: usize,
    /// Number of sampled frames per moment window.
    moment_length: usize,
    /// Modeled per-frame feature-extraction cost in milliseconds.
    feature_ms_per_frame: f64,
    /// Modeled per-moment cross-modal scoring cost in milliseconds.
    scoring_ms_per_moment: f64,
    moments: Vec<Moment>,
}

impl Default for Umt {
    fn default() -> Self {
        Self::new()
    }
}

impl Umt {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self {
            text_encoder: TextEncoder::new(TextEncoderConfig::default())
                .expect("default text encoder config is valid"),
            sample_interval: 10,
            moment_length: 6,
            feature_ms_per_frame: 2.0,
            scoring_ms_per_moment: 350.0,
            moments: Vec::new(),
        }
    }

    /// Number of indexed moments (diagnostic).
    pub fn indexed_moments(&self) -> usize {
        self.moments.len()
    }
}

impl ObjectQuerySystem for Umt {
    fn name(&self) -> &'static str {
        "UMT"
    }

    fn preprocess(&mut self, videos: &VideoCollection) -> PreprocessReport {
        let start = Instant::now();
        let space = self.text_encoder.space();
        self.moments.clear();
        let mut frames_processed = 0usize;
        for video in &videos.videos {
            let sampled: Vec<&lovo_video::Frame> = video
                .frames
                .iter()
                .step_by(self.sample_interval.max(1))
                .collect();
            for window in sampled.chunks(self.moment_length.max(1)) {
                let mut embedding = vec![0.0f32; space.dim()];
                let mut frame_indices = Vec::with_capacity(window.len());
                let mut best_box = BoundingBox::new(
                    0.0,
                    0.0,
                    video.frames[0].width as f32,
                    video.frames[0].height as f32,
                );
                let mut best_area = 0.0f32;
                for frame in window {
                    frames_processed += 1;
                    frame_indices.push(frame.index as u32);
                    let frame_area = (frame.width as f32 * frame.height as f32).max(1.0);
                    for obj in &frame.objects {
                        // Strong area weighting: moment retrieval is tuned for
                        // scene-level events, so small objects contribute little.
                        let weight = (obj.bbox.area() / frame_area).clamp(0.0, 1.0);
                        let obj_embedding =
                            space.embed_attributes(&obj.attributes, DetailLevel::Coarse);
                        for (e, o) in embedding.iter_mut().zip(obj_embedding.iter()) {
                            *e += weight * o;
                        }
                        if obj.bbox.area() > best_area {
                            best_area = obj.bbox.area();
                            best_box = obj.bbox;
                        }
                    }
                }
                l2_normalize(&mut embedding);
                self.moments.push(Moment {
                    video_id: video.id,
                    frame_indices,
                    embedding,
                    frame_box: best_box,
                });
            }
        }
        PreprocessReport {
            wall_seconds: start.elapsed().as_secs_f64(),
            modeled_seconds: frames_processed as f64 * self.feature_ms_per_frame / 1000.0 + 3.0,
            frames_processed,
        }
    }

    fn query(&self, _videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse {
        let start = Instant::now();
        let encoded = match self.text_encoder.encode(&query.text) {
            Ok(e) => e,
            Err(_) => {
                return QueryResponse {
                    supported: false,
                    ..Default::default()
                }
            }
        };
        let mut hits = Vec::new();
        for moment in &self.moments {
            let score = dot(&encoded.embedding, &moment.embedding);
            for &frame_index in &moment.frame_indices {
                hits.push(RankedHit {
                    video_id: moment.video_id,
                    frame_index,
                    bbox: moment.frame_box,
                    score,
                });
            }
        }
        QueryResponse {
            hits: finalize_hits(hits, top),
            wall_seconds: start.elapsed().as_secs_f64(),
            // The joint multi-modal transformer runs once per moment at query
            // time, which is why UMT's search dominates its total in Table III.
            modeled_seconds: self.moments.len() as f64 * self.scoring_ms_per_moment / 1000.0,
            supported: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::{DatasetConfig, DatasetKind, ObjectClass};

    fn videos() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Qvhighlights)
                .with_num_videos(6)
                .with_frames_per_video(120)
                .with_seed(2),
        )
    }

    fn woman_query() -> ObjectQuery {
        ObjectQuery::new(
            "Q3.1",
            "A woman smiling sitting inside car.",
            QueryConstraints {
                class: Some(ObjectClass::Person),
                gender: Some(lovo_video::Gender::Woman),
                location: Some(lovo_video::Location::InsideCar),
                ..Default::default()
            },
            QueryComplexity::Normal,
        )
    }

    #[test]
    fn builds_moments_and_answers_queries() {
        let collection = videos();
        let mut umt = Umt::new();
        let pre = umt.preprocess(&collection);
        assert!(umt.indexed_moments() > 0);
        assert!(pre.frames_processed > 0);
        let response = umt.query(&collection, &woman_query(), 10);
        assert!(response.supported);
        assert!(!response.hits.is_empty());
    }

    #[test]
    fn search_cost_exceeds_processing_cost() {
        // Table III: UMT's query search dominates its video processing.
        let collection = videos();
        let mut umt = Umt::new();
        let pre = umt.preprocess(&collection);
        let response = umt.query(&collection, &woman_query(), 10);
        assert!(response.modeled_seconds > pre.modeled_seconds);
    }

    #[test]
    fn hits_within_a_moment_share_score_and_box() {
        let collection = videos();
        let mut umt = Umt::new();
        umt.preprocess(&collection);
        let response = umt.query(&collection, &woman_query(), 30);
        // Consecutive hits from the same moment have identical scores.
        let same_scores = response
            .hits
            .windows(2)
            .filter(|w| (w[0].score - w[1].score).abs() < 1e-6)
            .count();
        assert!(same_scores > 0);
    }
}
