//! FiGO-style QD-search baseline: fine-grained query optimization over a
//! detector ensemble.
//!
//! FiGO picks, per query, a combination of cheap and expensive detection
//! models to trade accuracy for throughput. The analogue scans every sampled
//! frame with a fast low-accuracy detector, then verifies the most promising
//! candidates with an accurate detector plus the attribute classifier. The
//! per-query optimization step is a fixed modeled cost. Like MIRIS, relations
//! and open-vocabulary details are not expressible.

use crate::{finalize_hits, ObjectQuerySystem, PreprocessReport, QueryResponse, RankedHit};
use lovo_encoder::detector::AttributeClassifier;
use lovo_encoder::{DetectorConfig, SimulatedDetector};
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use std::time::Instant;

/// The FiGO-style baseline.
pub struct Figo {
    fast_detector: SimulatedDetector,
    accurate_detector: SimulatedDetector,
    classifier: AttributeClassifier,
    sample_interval: usize,
    /// Modeled seconds spent building the per-query execution plan.
    query_optimization_seconds: f64,
    /// Fraction of fast-pass candidates verified with the accurate detector.
    verify_fraction: f32,
}

impl Default for Figo {
    fn default() -> Self {
        Self::new()
    }
}

impl Figo {
    /// Creates the baseline with the paper-calibrated cost model.
    pub fn new() -> Self {
        Self {
            fast_detector: SimulatedDetector::new(DetectorConfig::fast()),
            accurate_detector: SimulatedDetector::new(DetectorConfig::accurate()),
            classifier: AttributeClassifier::default(),
            sample_interval: 3,
            query_optimization_seconds: 30.0,
            verify_fraction: 0.2,
        }
    }
}

impl ObjectQuerySystem for Figo {
    fn name(&self) -> &'static str {
        "FiGO"
    }

    fn preprocess(&mut self, _videos: &VideoCollection) -> PreprocessReport {
        PreprocessReport {
            wall_seconds: 0.0,
            modeled_seconds: 1.0,
            frames_processed: 0,
        }
    }

    fn query(&self, videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse {
        let start = Instant::now();
        let constraints = &query.constraints;
        let wanted_label = constraints.class.and_then(|c| c.coco_label());

        // Pass 1: fast detector over the sampled frames.
        let mut candidates: Vec<RankedHit> = Vec::new();
        let mut frames_scanned = 0usize;
        for video in &videos.videos {
            for frame in video.frames.iter().step_by(self.sample_interval.max(1)) {
                frames_scanned += 1;
                for det in self.fast_detector.detect(frame) {
                    if let Some(label) = wanted_label {
                        if det.label != label {
                            continue;
                        }
                    }
                    candidates.push(RankedHit {
                        video_id: video.id,
                        frame_index: frame.index as u32,
                        bbox: det.bbox,
                        score: det.confidence,
                    });
                }
            }
        }

        // Pass 2: verify the best candidates with the accurate detector and
        // the attribute classifier.
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.video_id, a.frame_index).cmp(&(b.video_id, b.frame_index)))
        });
        let verify_count = ((candidates.len() as f32) * self.verify_fraction).ceil() as usize;
        let verify_count = verify_count.max(top.min(candidates.len()));
        let mut verified: Vec<RankedHit> = Vec::new();
        let mut objects_classified = 0usize;
        for candidate in candidates.iter().take(verify_count) {
            let frame =
                &videos.videos[candidate.video_id as usize].frames[candidate.frame_index as usize];
            let detections = self.accurate_detector.detect(frame);
            // Keep the candidate if the accurate detector confirms an object of
            // the right class overlapping the fast box, and the attribute
            // classifier confirms the constrained facets.
            let confirmed = detections.iter().find(|d| {
                wanted_label.map(|l| d.label == l).unwrap_or(true)
                    && d.bbox.iou(&candidate.bbox) > 0.3
            });
            let Some(confirmation) = confirmed else {
                continue;
            };
            let mut score = confirmation.confidence;
            if let Some(src) = confirmation.source_object {
                let needs_attributes = constraints.color.is_some()
                    || constraints.size.is_some()
                    || constraints.activity.is_some()
                    || constraints.location.is_some();
                if needs_attributes {
                    objects_classified += 1;
                    let predicted = self
                        .classifier
                        .classify(frame.index, src, &frame.objects[src]);
                    let mut ok = true;
                    if let Some(color) = constraints.color {
                        ok &= predicted.color == color;
                    }
                    if let Some(size) = constraints.size {
                        ok &= predicted.size == size;
                    }
                    if let Some(activity) = constraints.activity {
                        ok &= predicted.activity == activity;
                    }
                    if let Some(location) = constraints.location {
                        ok &= location.accepts(&predicted.location);
                    }
                    if !ok {
                        continue;
                    }
                    score *= 0.95;
                }
            }
            verified.push(RankedHit {
                bbox: confirmation.bbox,
                score,
                ..*candidate
            });
        }

        let modeled_seconds = self.query_optimization_seconds
            + frames_scanned as f64 * self.fast_detector.cost_per_frame_ms() / 1000.0
            + verify_count as f64 * self.accurate_detector.cost_per_frame_ms() / 1000.0
            + objects_classified as f64 * self.classifier.cost_per_object_ms / 1000.0;

        QueryResponse {
            hits: finalize_hits(verified, top),
            wall_seconds: start.elapsed().as_secs_f64(),
            modeled_seconds,
            supported: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Miris;
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::{Color, DatasetConfig, DatasetKind, ObjectClass};

    fn videos() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Beach)
                .with_frames_per_video(150)
                .with_seed(4),
        )
    }

    fn truck_query() -> ObjectQuery {
        ObjectQuery::new(
            "Q4.3",
            "A truck driving on the road.",
            QueryConstraints {
                class: Some(ObjectClass::Truck),
                ..Default::default()
            },
            QueryComplexity::Simple,
        )
    }

    #[test]
    fn finds_trucks_on_the_beach_road() {
        let collection = videos();
        let figo = Figo::new();
        let response = figo.query(&collection, &truck_query(), 20);
        assert!(response.supported);
        assert!(!response.hits.is_empty());
        let correct = response
            .hits
            .iter()
            .filter(|hit| {
                collection.videos[hit.video_id as usize].frames[hit.frame_index as usize]
                    .objects
                    .iter()
                    .any(|o| o.attributes.class == ObjectClass::Truck)
            })
            .count();
        assert!(correct * 2 >= response.hits.len());
    }

    #[test]
    fn cheaper_than_miris_but_still_per_query_expensive() {
        let collection = videos();
        let figo = Figo::new();
        let miris = Miris::new();
        let q = truck_query();
        let figo_cost = figo.query(&collection, &q, 10).modeled_seconds;
        let miris_cost = miris.query(&collection, &q, 10).modeled_seconds;
        assert!(
            figo_cost < miris_cost,
            "FiGO {figo_cost} vs MIRIS {miris_cost}"
        );
        assert!(figo_cost > 10.0, "FiGO still rescans the video per query");
    }

    #[test]
    fn attribute_constraints_filter_candidates() {
        let collection = videos();
        let figo = Figo::new();
        let plain = figo.query(&collection, &truck_query(), 50);
        let white_truck = ObjectQuery::new(
            "Q4.4",
            "A small white truck filled with cargo driving on the road.",
            QueryConstraints {
                class: Some(ObjectClass::Truck),
                color: Some(Color::White),
                ..Default::default()
            },
            QueryComplexity::Normal,
        );
        let filtered = figo.query(&collection, &white_truck, 50);
        assert!(filtered.hits.len() <= plain.hits.len());
    }
}
