//! Adapter exposing `lovo_core::Lovo` through the [`ObjectQuerySystem`] trait
//! so the evaluation harness can compare it head-to-head with the baselines.
//!
//! The modeled latency calibration follows the paper's reported magnitudes:
//! video processing is dominated by the visual encoder at ≈0.08 s per key
//! frame (Fig. 11(a)); the fast search costs its real wall-clock (it is a real
//! index probe in this reproduction too); the cross-modality rerank is modeled
//! at ≈0.9 s per candidate frame (Fig. 11(d) reports ≈1 s per key frame).

use crate::{ObjectQuerySystem, PreprocessReport, QueryResponse, RankedHit};
use lovo_core::{Lovo, LovoConfig};
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use std::time::Instant;

/// Modeled visual-encoding cost per key frame in seconds (Fig. 11(a)).
pub const PROCESSING_SECONDS_PER_KEYFRAME: f64 = 0.08;
/// Modeled cross-modality rerank cost per candidate frame in seconds (Fig. 11(d)).
pub const RERANK_SECONDS_PER_FRAME: f64 = 0.9;

/// LOVO behind the common evaluation trait.
pub struct LovoSystem {
    config: LovoConfig,
    system: Option<Lovo>,
}

impl Default for LovoSystem {
    fn default() -> Self {
        Self::new(LovoConfig::default())
    }
}

impl LovoSystem {
    /// Creates the adapter with an explicit configuration (the ablation and
    /// ANN-variant experiments pass non-default configurations here).
    pub fn new(config: LovoConfig) -> Self {
        Self {
            config,
            system: None,
        }
    }

    /// Borrow the built system, if `preprocess` has run.
    pub fn inner(&self) -> Option<&Lovo> {
        self.system.as_ref()
    }
}

impl ObjectQuerySystem for LovoSystem {
    fn name(&self) -> &'static str {
        "LOVO"
    }

    fn preprocess(&mut self, videos: &VideoCollection) -> PreprocessReport {
        let start = Instant::now();
        let system = Lovo::build(videos, self.config).expect("LOVO build failed");
        let stats = system.ingest_stats();
        self.system = Some(system);
        PreprocessReport {
            wall_seconds: start.elapsed().as_secs_f64(),
            modeled_seconds: stats.key_frames as f64 * PROCESSING_SECONDS_PER_KEYFRAME
                + stats.indexing_seconds,
            frames_processed: stats.key_frames,
        }
    }

    fn query(&self, _videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse {
        let Some(system) = &self.system else {
            return QueryResponse {
                supported: false,
                ..Default::default()
            };
        };
        let start = Instant::now();
        let result = system
            .query_with_k(&query.text, system.config().fast_search_k.max(top))
            .expect("LOVO query failed");
        let hits = result
            .frames
            .iter()
            .take(top)
            .map(|f| RankedHit {
                video_id: f.video_id,
                frame_index: f.frame_index,
                bbox: f.bbox,
                score: f.score,
            })
            .collect();
        let modeled_seconds = result.timings.text_encoding_seconds
            + result.timings.fast_search_seconds
            + result.reranked_frames as f64 * RERANK_SECONDS_PER_FRAME;
        QueryResponse {
            hits,
            wall_seconds: start.elapsed().as_secs_f64(),
            modeled_seconds,
            supported: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::{Color, DatasetConfig, DatasetKind, Location, ObjectClass};

    fn videos() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(240)
                .with_seed(13),
        )
    }

    fn red_center_query() -> ObjectQuery {
        ObjectQuery::new(
            "Q2.1",
            "A red car driving in the center of the road.",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                color: Some(Color::Red),
                location: Some(Location::RoadCenter),
                ..Default::default()
            },
            QueryComplexity::Normal,
        )
    }

    #[test]
    fn adapter_builds_and_answers() {
        let collection = videos();
        let mut lovo = LovoSystem::default();
        let pre = lovo.preprocess(&collection);
        assert!(pre.frames_processed > 0);
        assert!(pre.modeled_seconds > 0.0);
        let response = lovo.query(&collection, &red_center_query(), 10);
        assert!(response.supported);
        assert!(!response.hits.is_empty());
        assert!(response.modeled_seconds > 0.0);
    }

    #[test]
    fn unbuilt_adapter_reports_unsupported() {
        let collection = videos();
        let lovo = LovoSystem::default();
        let response = lovo.query(&collection, &red_center_query(), 10);
        assert!(!response.supported);
        assert!(response.hits.is_empty());
    }

    #[test]
    fn search_cost_is_far_below_qd_search() {
        let collection = videos();
        let mut lovo = LovoSystem::default();
        lovo.preprocess(&collection);
        let lovo_cost = lovo
            .query(&collection, &red_center_query(), 10)
            .modeled_seconds;
        let miris_cost = crate::Miris::new()
            .query(&collection, &red_center_query(), 10)
            .modeled_seconds;
        assert!(
            lovo_cost * 2.0 < miris_cost,
            "LOVO {lovo_cost:.1}s should be far below MIRIS {miris_cost:.1}s"
        );
    }
}
