//! VISA-style baseline: LLM-driven video reasoning segmentation.
//!
//! VISA pairs a vision encoder with a large language model that reasons about
//! each frame and segments the referred object. It is accurate on everyday
//! web video (its training distribution) but degrades on traffic-surveillance
//! footage, and its per-frame LLM decoding makes both processing and search
//! extremely slow (Table III). The analogue reasons over sampled frames with
//! high per-facet accuracy, applies a domain penalty on traffic datasets, and
//! carries the paper-calibrated LLM cost model.

use crate::{finalize_hits, ObjectQuerySystem, PreprocessReport, QueryResponse, RankedHit};
use lovo_tensor::init::rng_for;
use lovo_video::keyframe::{KeyframeExtractor, KeyframePolicy};
use lovo_video::query::ObjectQuery;
use lovo_video::{DatasetKind, VideoCollection};
use rand::Rng;
use std::time::Instant;

/// The VISA-style baseline.
pub struct Visa {
    sample_interval: usize,
    /// Probability of a reasoning error on everyday (in-domain) footage.
    in_domain_error: f32,
    /// Probability of a reasoning error on traffic-surveillance footage.
    out_of_domain_error: f32,
    /// Modeled per-frame vision-encoder cost in milliseconds (processing).
    vision_ms_per_frame: f64,
    /// Modeled per-frame LLM reasoning cost in milliseconds (search).
    llm_ms_per_frame: f64,
    seed: u64,
}

impl Default for Visa {
    fn default() -> Self {
        Self::new()
    }
}

impl Visa {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self {
            sample_interval: 12,
            in_domain_error: 0.08,
            out_of_domain_error: 0.4,
            vision_ms_per_frame: 110.0,
            llm_ms_per_frame: 420.0,
            seed: 0x715a,
        }
    }

    fn error_rate_for(&self, kind: DatasetKind) -> f32 {
        match kind {
            DatasetKind::Qvhighlights | DatasetKind::ActivityNetQa => self.in_domain_error,
            DatasetKind::Cityscapes | DatasetKind::Bellevue | DatasetKind::Beach => {
                self.out_of_domain_error
            }
        }
    }
}

impl ObjectQuerySystem for Visa {
    fn name(&self) -> &'static str {
        "VISA"
    }

    fn preprocess(&mut self, videos: &VideoCollection) -> PreprocessReport {
        // Vision-encoder features are extracted ahead of time; the LLM pass
        // still happens per query.
        let frames = videos.total_frames() / self.sample_interval.max(1);
        PreprocessReport {
            wall_seconds: 0.0,
            modeled_seconds: frames as f64 * self.vision_ms_per_frame / 1000.0,
            frames_processed: frames,
        }
    }

    fn query(&self, videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse {
        let start = Instant::now();
        let error_rate = self.error_rate_for(videos.config.kind);
        let extractor = KeyframeExtractor::new(KeyframePolicy::FixedInterval {
            interval: self.sample_interval,
        });
        let mut hits = Vec::new();
        let mut frames_reasoned = 0usize;
        for video in &videos.videos {
            for frame in extractor.select(&video.frames) {
                frames_reasoned += 1;
                let mut rng = rng_for(
                    self.seed,
                    &format!("visa.{}.{}.{}", query.id, video.id, frame.index),
                );
                // The LLM reasons about whether the frame answers the query and
                // segments the object it believes is referred to.
                let truly_positive = frame
                    .objects
                    .iter()
                    .any(|o| query.constraints.matches(&o.attributes));
                let reasoning_error = rng.gen_range(0.0f32..1.0) < error_rate;
                let judged_positive = truly_positive != reasoning_error;
                if !judged_positive {
                    continue;
                }
                // Segment the object the model grounds: the true target when the
                // judgement is sound, an arbitrary object when hallucinating.
                let bbox = if truly_positive && !reasoning_error {
                    frame
                        .objects
                        .iter()
                        .find(|o| query.constraints.matches(&o.attributes))
                        .map(|o| o.bbox)
                } else {
                    frame.objects.first().map(|o| o.bbox)
                }
                .unwrap_or(lovo_video::BoundingBox::new(
                    0.0,
                    0.0,
                    frame.width as f32,
                    frame.height as f32,
                ));
                hits.push(RankedHit {
                    video_id: video.id,
                    frame_index: frame.index as u32,
                    bbox,
                    score: rng.gen_range(0.6f32..1.0),
                });
            }
        }
        QueryResponse {
            hits: finalize_hits(hits, top),
            wall_seconds: start.elapsed().as_secs_f64(),
            modeled_seconds: frames_reasoned as f64 * self.llm_ms_per_frame / 1000.0,
            supported: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::{Accessory, Activity, DatasetConfig, Location, ObjectClass};

    fn query_dancing() -> ObjectQuery {
        ObjectQuery::new(
            "EQ4",
            "is the person in a grey skirt dancing in the room",
            QueryConstraints {
                class: Some(ObjectClass::Person),
                activity: Some(Activity::Dancing),
                location: Some(Location::Room),
                accessories: vec![Accessory::GreySkirt],
                ..Default::default()
            },
            QueryComplexity::Complex,
        )
    }

    #[test]
    fn accurate_on_everyday_video() {
        let collection = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::ActivityNetQa)
                .with_num_videos(8)
                .with_frames_per_video(150),
        );
        let visa = Visa::new();
        let response = visa.query(&collection, &query_dancing(), 20);
        assert!(response.supported);
        if !response.hits.is_empty() {
            let correct = response
                .hits
                .iter()
                .filter(|hit| {
                    collection.videos[hit.video_id as usize].frames[hit.frame_index as usize]
                        .objects
                        .iter()
                        .any(|o| query_dancing().constraints.matches(&o.attributes))
                })
                .count();
            assert!(
                correct * 3 >= response.hits.len() * 2,
                "only {correct}/{} hits correct in-domain",
                response.hits.len()
            );
        }
    }

    #[test]
    fn domain_penalty_applies_to_traffic_footage() {
        let visa = Visa::new();
        assert!(
            visa.error_rate_for(DatasetKind::Bellevue)
                > visa.error_rate_for(DatasetKind::Qvhighlights)
        );
    }

    #[test]
    fn llm_reasoning_dominates_cost() {
        let collection = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(300),
        );
        let mut visa = Visa::new();
        let pre = visa.preprocess(&collection);
        let response = visa.query(&collection, &query_dancing(), 10);
        assert!(response.modeled_seconds > 1.0);
        assert!(pre.modeled_seconds > 1.0);
    }
}
