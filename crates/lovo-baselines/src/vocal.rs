//! VOCAL-style QA-index baseline: a predefined-class spatio-temporal index.
//!
//! During ingestion the system runs a conventional detector over sampled
//! frames and builds an inverted index from MSCOCO labels to the frames (and
//! boxes) where they were detected. Queries that are exactly a predefined
//! class are answered instantly from the index; anything with novel classes,
//! attributes or relations is unsupported — the behaviour Fig. 2 and Fig. 6
//! report for VOCAL ("nearly unable to recognize most of the queries").

use crate::{finalize_hits, ObjectQuerySystem, PreprocessReport, QueryResponse, RankedHit};
use lovo_encoder::{DetectorConfig, SimulatedDetector};
use lovo_video::keyframe::{KeyframeExtractor, KeyframePolicy};
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use std::collections::HashMap;
use std::time::Instant;

/// The VOCAL-style baseline.
pub struct Vocal {
    detector: SimulatedDetector,
    sample_interval: usize,
    /// label -> hits discovered at ingest time.
    index: HashMap<String, Vec<RankedHit>>,
}

impl Default for Vocal {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocal {
    /// Creates the baseline with its default detector and sampling interval.
    pub fn new() -> Self {
        Self {
            detector: SimulatedDetector::new(DetectorConfig::default()),
            sample_interval: 15,
            index: HashMap::new(),
        }
    }

    /// Number of indexed labels (diagnostic).
    pub fn indexed_labels(&self) -> usize {
        self.index.len()
    }
}

impl ObjectQuerySystem for Vocal {
    fn name(&self) -> &'static str {
        "VOCAL"
    }

    fn preprocess(&mut self, videos: &VideoCollection) -> PreprocessReport {
        let start = Instant::now();
        let extractor = KeyframeExtractor::new(KeyframePolicy::FixedInterval {
            interval: self.sample_interval,
        });
        let mut frames_processed = 0usize;
        self.index.clear();
        for video in &videos.videos {
            for frame in extractor.select(&video.frames) {
                frames_processed += 1;
                for det in self.detector.detect(frame) {
                    self.index
                        .entry(det.label.clone())
                        .or_default()
                        .push(RankedHit {
                            video_id: video.id,
                            frame_index: frame.index as u32,
                            bbox: det.bbox,
                            score: det.confidence,
                        });
                }
            }
        }
        PreprocessReport {
            wall_seconds: start.elapsed().as_secs_f64(),
            // One detector pass per sampled frame, plus scene-graph assembly.
            modeled_seconds: frames_processed as f64 * (self.detector.cost_per_frame_ms() + 4.0)
                / 1000.0,
            frames_processed,
        }
    }

    fn query(&self, _videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse {
        let start = Instant::now();
        if !self.supports(query) {
            return QueryResponse {
                hits: Vec::new(),
                wall_seconds: start.elapsed().as_secs_f64(),
                modeled_seconds: 0.1,
                supported: false,
            };
        }
        let label = query
            .constraints
            .class
            .and_then(|c| c.coco_label())
            .unwrap_or_default();
        let hits = self
            .index
            .get(label)
            .map(|hits| finalize_hits(hits.clone(), top))
            .unwrap_or_default();
        QueryResponse {
            hits,
            wall_seconds: start.elapsed().as_secs_f64(),
            // Index lookup only: this is why QA-index queries are ~0.5 s in Fig. 2.
            modeled_seconds: 0.4,
            supported: true,
        }
    }

    fn supports(&self, query: &ObjectQuery) -> bool {
        query.constraints.is_predefined_class_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::{Color, DatasetConfig, DatasetKind, ObjectClass};

    fn videos() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_frames_per_video(200)
                .with_seed(3),
        )
    }

    fn simple_car_query() -> ObjectQuery {
        ObjectQuery::new(
            "S1",
            "car",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                ..Default::default()
            },
            QueryComplexity::Simple,
        )
    }

    #[test]
    fn answers_predefined_class_queries_from_the_index() {
        let collection = videos();
        let mut vocal = Vocal::new();
        let report = vocal.preprocess(&collection);
        assert!(report.frames_processed > 0);
        assert!(vocal.indexed_labels() > 0);
        let response = vocal.query(&collection, &simple_car_query(), 20);
        assert!(response.supported);
        assert!(!response.hits.is_empty());
        assert!(
            response.modeled_seconds < 1.0,
            "index lookups are sub-second"
        );
    }

    #[test]
    fn rejects_complex_queries() {
        let collection = videos();
        let mut vocal = Vocal::new();
        vocal.preprocess(&collection);
        let complex = ObjectQuery::new(
            "Q2.1",
            "a red car driving in the center of the road",
            QueryConstraints {
                class: Some(ObjectClass::Car),
                color: Some(Color::Red),
                ..Default::default()
            },
            QueryComplexity::Normal,
        );
        assert!(!vocal.supports(&complex));
        let response = vocal.query(&collection, &complex, 20);
        assert!(!response.supported);
        assert!(response.hits.is_empty());
    }

    #[test]
    fn preprocess_cost_scales_with_frames() {
        let small = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(100),
        );
        let large = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(400),
        );
        let mut vocal = Vocal::new();
        let a = vocal.preprocess(&small);
        let b = vocal.preprocess(&large);
        assert!(b.modeled_seconds > a.modeled_seconds);
    }
}
