//! ZELDA-style vision-based baseline: global frame-level CLIP retrieval.
//!
//! ZELDA encodes whole frames with a vision-language model and retrieves
//! frames by cosine similarity with the text query. The analogue builds one
//! global embedding per sampled frame (the area-weighted average of the
//! coarse attribute embeddings of everything visible — exactly the kind of
//! object mixing that makes frame-level retrieval blur small objects and
//! fine details), and answers queries by exhaustive cosine scan. There is no
//! rerank and no object-level grounding: the returned box is the largest
//! object's box, which is why ZELDA "identified the largest but incomplete
//! object" in the paper's qualitative analysis (Fig. 7).

use crate::{finalize_hits, ObjectQuerySystem, PreprocessReport, QueryResponse, RankedHit};
use lovo_encoder::space::DetailLevel;
use lovo_encoder::{TextEncoder, TextEncoderConfig};
use lovo_tensor::ops::{dot, l2_normalize};
use lovo_video::bbox::BoundingBox;
use lovo_video::keyframe::{KeyframeExtractor, KeyframePolicy};
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use std::time::Instant;

struct FrameEntry {
    video_id: u32,
    frame_index: u32,
    embedding: Vec<f32>,
    /// Box of the largest visible object (full frame if empty).
    dominant_box: BoundingBox,
}

/// The ZELDA-style baseline.
pub struct Zelda {
    text_encoder: TextEncoder,
    sample_interval: usize,
    /// Modeled per-frame CLIP encoding cost in milliseconds.
    clip_ms_per_frame: f64,
    frames: Vec<FrameEntry>,
}

impl Default for Zelda {
    fn default() -> Self {
        Self::new()
    }
}

impl Zelda {
    /// Creates the baseline.
    pub fn new() -> Self {
        Self {
            text_encoder: TextEncoder::new(TextEncoderConfig::default())
                .expect("default text encoder config is valid"),
            sample_interval: 10,
            clip_ms_per_frame: 9.0,
            frames: Vec::new(),
        }
    }

    /// Number of indexed frames (diagnostic).
    pub fn indexed_frames(&self) -> usize {
        self.frames.len()
    }
}

impl ObjectQuerySystem for Zelda {
    fn name(&self) -> &'static str {
        "ZELDA"
    }

    fn preprocess(&mut self, videos: &VideoCollection) -> PreprocessReport {
        let start = Instant::now();
        let extractor = KeyframeExtractor::new(KeyframePolicy::FixedInterval {
            interval: self.sample_interval,
        });
        let space = self.text_encoder.space();
        self.frames.clear();
        let mut frames_processed = 0usize;
        for video in &videos.videos {
            for frame in extractor.select(&video.frames) {
                frames_processed += 1;
                // Global frame embedding: area-weighted mix of every visible
                // object plus a background component. Small objects barely
                // register — the frame-level granularity limitation.
                let frame_area = (frame.width as f32 * frame.height as f32).max(1.0);
                let mut embedding = space.background_embedding(frame.index % 5);
                for v in embedding.iter_mut() {
                    *v *= 0.3;
                }
                let mut dominant_box =
                    BoundingBox::new(0.0, 0.0, frame.width as f32, frame.height as f32);
                let mut dominant_area = 0.0f32;
                for obj in &frame.objects {
                    let weight = (obj.bbox.area() / frame_area).clamp(0.0, 1.0).sqrt();
                    let obj_embedding =
                        space.embed_attributes(&obj.attributes, DetailLevel::Coarse);
                    for (e, o) in embedding.iter_mut().zip(obj_embedding.iter()) {
                        *e += weight * o;
                    }
                    if obj.bbox.area() > dominant_area {
                        dominant_area = obj.bbox.area();
                        dominant_box = obj.bbox;
                    }
                }
                l2_normalize(&mut embedding);
                self.frames.push(FrameEntry {
                    video_id: video.id,
                    frame_index: frame.index as u32,
                    embedding,
                    dominant_box,
                });
            }
        }
        PreprocessReport {
            wall_seconds: start.elapsed().as_secs_f64(),
            modeled_seconds: frames_processed as f64 * self.clip_ms_per_frame / 1000.0
                + videos.total_frames() as f64 * 0.0008,
            frames_processed,
        }
    }

    fn query(&self, _videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse {
        let start = Instant::now();
        let encoded = match self.text_encoder.encode(&query.text) {
            Ok(e) => e,
            Err(_) => {
                return QueryResponse {
                    supported: false,
                    ..Default::default()
                }
            }
        };
        let hits: Vec<RankedHit> = self
            .frames
            .iter()
            .map(|entry| RankedHit {
                video_id: entry.video_id,
                frame_index: entry.frame_index,
                bbox: entry.dominant_box,
                score: dot(&encoded.embedding, &entry.embedding),
            })
            .collect();
        QueryResponse {
            hits: finalize_hits(hits, top),
            wall_seconds: start.elapsed().as_secs_f64(),
            // Text encode + exhaustive scan over frame embeddings.
            modeled_seconds: 0.8 + self.frames.len() as f64 * 0.000_02,
            supported: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lovo_video::query::{QueryComplexity, QueryConstraints};
    use lovo_video::{Color, DatasetConfig, DatasetKind, ObjectClass};

    fn videos() -> VideoCollection {
        VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Beach)
                .with_frames_per_video(300)
                .with_seed(6),
        )
    }

    fn bus_query() -> ObjectQuery {
        ObjectQuery::new(
            "Q4.1",
            "A green bus driving on the road.",
            QueryConstraints {
                class: Some(ObjectClass::Bus),
                color: Some(Color::Green),
                ..Default::default()
            },
            QueryComplexity::Normal,
        )
    }

    #[test]
    fn retrieves_frames_containing_large_queried_objects() {
        let collection = videos();
        let mut zelda = Zelda::new();
        zelda.preprocess(&collection);
        assert!(zelda.indexed_frames() > 0);
        let response = zelda.query(&collection, &bus_query(), 10);
        assert!(response.supported);
        assert_eq!(response.hits.len().min(10), response.hits.len());
        // The top hits should mostly contain a green bus (buses are large, the
        // favourable case for frame-level retrieval).
        let correct = response
            .hits
            .iter()
            .take(5)
            .filter(|hit| {
                collection.videos[hit.video_id as usize].frames[hit.frame_index as usize]
                    .objects
                    .iter()
                    .any(|o| {
                        o.attributes.class == ObjectClass::Bus && o.attributes.color == Color::Green
                    })
            })
            .count();
        assert!(
            correct >= 3,
            "only {correct}/5 top hits contain a green bus"
        );
    }

    #[test]
    fn search_is_fast_but_processing_scales_with_frames() {
        let small = videos();
        let large = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Beach)
                .with_frames_per_video(900)
                .with_seed(6),
        );
        let mut zelda = Zelda::new();
        let pre_small = zelda.preprocess(&small);
        let search_small = zelda.query(&small, &bus_query(), 10).modeled_seconds;
        let pre_large = zelda.preprocess(&large);
        let search_large = zelda.query(&large, &bus_query(), 10).modeled_seconds;
        // Search stays in the low seconds regardless of scale (a flat scan of
        // compact frame embeddings), while processing grows with frame count —
        // on paper-scale datasets processing dominates (Table III).
        assert!(search_small < 2.0 && search_large < 2.0);
        assert!(pre_large.modeled_seconds > pre_small.modeled_seconds * 2.0);
        assert!(
            (search_large - search_small).abs() < 0.5,
            "search cost should barely grow with dataset size"
        );
    }

    #[test]
    fn boxes_are_frame_level_not_object_grounded() {
        // ZELDA's returned box is the dominant object's box, so for queries
        // about small objects it will often not match the target object.
        let collection = videos();
        let mut zelda = Zelda::new();
        zelda.preprocess(&collection);
        let person_query = ObjectQuery::new(
            "P",
            "a person walking on the sidewalk",
            QueryConstraints {
                class: Some(ObjectClass::Person),
                ..Default::default()
            },
            QueryComplexity::Simple,
        );
        let response = zelda.query(&collection, &person_query, 10);
        // At least some returned boxes belong to larger non-person objects.
        let mismatched = response.hits.iter().filter(|hit| {
            let frame = &collection.videos[hit.video_id as usize].frames[hit.frame_index as usize];
            frame
                .objects
                .iter()
                .filter(|o| o.attributes.class == ObjectClass::Person)
                .all(|o| hit.bbox.iou(&o.bbox) < 0.5)
        });
        assert!(mismatched.count() > 0);
    }
}
