//! # lovo-baselines
//!
//! Architectural analogues of the systems LOVO is evaluated against
//! (§VII-A "Baselines"):
//!
//! | Paper system | Module | Family |
//! |---|---|---|
//! | VOCAL / EQUI-VOCAL | [`vocal`]  | QA-index: predefined-class scene index |
//! | MIRIS              | [`miris`]  | QD-search: query-driven tracker with per-query plan tuning |
//! | FiGO               | [`figo`]   | QD-search: detector-ensemble scan with query optimization |
//! | ZELDA              | [`zelda`]  | Vision-based: global CLIP-style frame retrieval |
//! | UMT                | [`umt`]    | End-to-end moment retrieval |
//! | VISA               | [`visa`]   | LLM-based video reasoning segmentation |
//!
//! plus [`lovo_adapter`], which wraps `lovo_core::Lovo` behind the same
//! [`ObjectQuerySystem`] trait so the evaluation harness treats every system
//! uniformly.
//!
//! ## Latency model
//!
//! Each baseline reports two latencies: the **wall-clock** time its (cheap,
//! simulated) implementation actually took, and a **modeled** time computed
//! from the per-frame / per-object inference costs of the neural components it
//! would run on the paper's testbed (detector passes, CLIP encodes, LLM
//! decoding). The modeled numbers are what the figure/table harnesses report
//! — they reproduce the *shape* of the paper's latency results (who wins and
//! by roughly what factor) without requiring the original GPUs; see DESIGN.md.

pub mod figo;
pub mod lovo_adapter;
pub mod miris;
pub mod umt;
pub mod visa;
pub mod vocal;
pub mod zelda;

pub use figo::Figo;
pub use lovo_adapter::LovoSystem;
pub use miris::Miris;
pub use umt::Umt;
pub use visa::Visa;
pub use vocal::Vocal;
pub use zelda::Zelda;

use lovo_video::bbox::BoundingBox;
use lovo_video::query::ObjectQuery;
use lovo_video::VideoCollection;
use serde::{Deserialize, Serialize};

/// One ranked answer: a frame (and box) believed to contain the queried object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedHit {
    /// Video the frame belongs to.
    pub video_id: u32,
    /// Frame index within the video.
    pub frame_index: u32,
    /// Bounding box of the proposed object (full frame when the system has no
    /// object-level grounding).
    pub bbox: BoundingBox,
    /// Relevance score, higher is better.
    pub score: f32,
}

/// Cost report of the one-time preprocessing phase.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PreprocessReport {
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
    /// Modeled seconds on the paper's reference hardware.
    pub modeled_seconds: f64,
    /// Number of frames the system processed.
    pub frames_processed: usize,
}

/// Cost + answer report of one query.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryResponse {
    /// Ranked hits, best first.
    pub hits: Vec<RankedHit>,
    /// Wall-clock seconds the simulation took.
    pub wall_seconds: f64,
    /// Modeled seconds on the paper's reference hardware.
    pub modeled_seconds: f64,
    /// Whether the system actually supports this query class (QA-index
    /// systems cannot express novel attributes; they return `false` here and
    /// an empty / class-only answer, mirroring "Unsupported" in Fig. 2/6).
    pub supported: bool,
}

/// The interface every evaluated system implements.
pub trait ObjectQuerySystem {
    /// Display name used in figures and tables.
    fn name(&self) -> &'static str;

    /// One-time, query-agnostic preprocessing over the video collection.
    /// QD-search systems do little here; QA-index and vision-based systems do
    /// their indexing here.
    fn preprocess(&mut self, videos: &VideoCollection) -> PreprocessReport;

    /// Answers a query with up to `top` ranked hits.
    fn query(&self, videos: &VideoCollection, query: &ObjectQuery, top: usize) -> QueryResponse;

    /// Whether the system's design can express the query at all.
    fn supports(&self, query: &ObjectQuery) -> bool {
        let _ = query;
        true
    }
}

/// Sorts hits by descending score and truncates to `top`, breaking ties by
/// frame order for determinism. Shared by every baseline.
pub(crate) fn finalize_hits(mut hits: Vec<RankedHit>, top: usize) -> Vec<RankedHit> {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.video_id.cmp(&b.video_id))
            .then(a.frame_index.cmp(&b.frame_index))
    });
    hits.truncate(top);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_hits_sorts_and_truncates() {
        let hits = vec![
            RankedHit {
                video_id: 0,
                frame_index: 5,
                bbox: BoundingBox::new(0.0, 0.0, 1.0, 1.0),
                score: 0.2,
            },
            RankedHit {
                video_id: 0,
                frame_index: 1,
                bbox: BoundingBox::new(0.0, 0.0, 1.0, 1.0),
                score: 0.9,
            },
            RankedHit {
                video_id: 1,
                frame_index: 2,
                bbox: BoundingBox::new(0.0, 0.0, 1.0, 1.0),
                score: 0.9,
            },
        ];
        let out = finalize_hits(hits, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].frame_index, 1);
        assert_eq!(out[1].video_id, 1);
    }
}
