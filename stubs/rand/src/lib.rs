//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides a drop-in implementation of the pieces the LOVO seed relies on:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen_range` / `gen` / `gen_bool` / `fill`. The generator
//! is `xoshiro256++` seeded through SplitMix64 — the same construction the
//! real `SmallRng` uses on 64-bit platforms, so statistical quality is
//! equivalent even though exact streams differ.

use std::ops::{Range, RangeInclusive};

/// Core random number generation: everything builds on `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); span <= u64::MAX here
                // because the range is half-open and non-empty.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(hi as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                if low == high {
                    return low;
                }
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as $wide).wrapping_add(low as $wide) as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                ((low as $wide).wrapping_add(hi as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty, $unit:ident);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let u = $unit(rng.next_u64());
                // Clamp below high so the half-open contract holds even when
                // rounding in `low + span * u` lands exactly on `high`.
                let v = low + (high - low) * u;
                if v >= high { high.next_down() } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                low + (high - low) * $unit(rng.next_u64())
            }
        }
    )*};
}

fn unit_f32(bits: u64) -> f32 {
    ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
}

fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

impl_sample_uniform_float!(f32, unit_f32; f64, unit_f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: `xoshiro256++`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut state: u64) -> Self {
            // SplitMix64 seeding, as recommended by the xoshiro authors.
            let mut next = || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s.iter().all(|&x| x == 0) {
                return Self::from_state(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn negative_and_zero_crossing_float_ranges_stay_half_open() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let a = rng.gen_range(-1.0f32..0.0);
            assert!((-1.0..0.0).contains(&a), "{a} escaped -1.0..0.0");
            let b = rng.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&b), "{b} escaped -2.0..-1.0");
        }
        // The clamp itself must stay inside the range for non-positive highs.
        assert!((-1.0f32..0.0).contains(&0.0f32.next_down()));
        assert!((-2.0f64..-1.0).contains(&(-1.0f64).next_down()));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
