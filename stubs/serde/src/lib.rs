//! Offline shim for the subset of the `serde` API used by this workspace.
//!
//! The seed derives `Serialize` / `Deserialize` on its data types but never
//! invokes an actual serializer (there is no `serde_json` in the tree), so the
//! traits here are markers and the derive macros (re-exported from
//! `serde_derive` when the `derive` feature is on, matching real serde's
//! feature layout) expand to empty token streams. Swapping this stub for the
//! real crate requires no source changes in the workspace.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
