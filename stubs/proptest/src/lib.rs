//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! Implements the pieces the tensor property tests need: the [`Strategy`]
//! trait with range and `prop::collection::vec` strategies, the [`proptest!`]
//! macro (including the `#![proptest_config(...)]` header), and the
//! `prop_assert!` family. Unlike real proptest there is no shrinking: a
//! failing case panics with the generated inputs left to the assertion
//! message. Cases are generated from a deterministic per-test seed, overridable
//! via the `PROPTEST_SEED` environment variable for reproduction.

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for property tests. No shrinking in this shim.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// `proptest::prelude::any::<T>()` for the types the workspace samples.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut SmallRng) -> bool {
        rng.gen_range(0..2u8) == 1
    }
}

/// A strategy producing one fixed value, like `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Lengths accepted by [`prop::collection::vec`]: a fixed size or a range.
pub trait IntoSizeRange {
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{IntoSizeRange, SmallRng, Strategy};
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S: Strategy> {
            element: S,
            min_len: usize,
            max_len: usize,
        }

        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min_len, max_len) = size.bounds();
            assert!(
                min_len < max_len,
                "empty size range for prop::collection::vec"
            );
            VecStrategy {
                element,
                min_len,
                max_len,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let len = rng.gen_range(self.min_len..self.max_len);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use super::prop;
    pub use super::{any, Any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic RNG for one property test, overridable via `PROPTEST_SEED`.
pub fn test_rng(test_name: &str) -> SmallRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return SmallRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the test name: distinct tests explore distinct streams.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest!` block: an optional `#![proptest_config(...)]` header
/// followed by `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..config.cases {
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::Strategy::sample(&$strat, &mut rng);)+
                        $body
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} failed in {} (set PROPTEST_SEED to reproduce)",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -4.0f32..4.0, n in 1usize..9) {
            prop_assert!((-4.0..4.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
