//! No-op `Serialize` / `Deserialize` derives for the offline serde shim.
//!
//! The workspace only uses serde derives as declarations of intent (nothing
//! serializes at runtime), so the derives expand to nothing. The `serde`
//! helper attribute is still registered so `#[serde(...)]` field attributes
//! would not break compilation if a future change adds them.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
