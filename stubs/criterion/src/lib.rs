//! Offline shim for the subset of the `criterion` API used by this workspace.
//!
//! Provides [`Criterion`], benchmark groups, [`criterion_group!`] /
//! [`criterion_main!`], and a [`Bencher`] whose `iter` performs a short
//! calibrated measurement (warm-up, then enough iterations to fill a fixed
//! time budget) and prints mean wall-clock time per iteration. No statistics,
//! plots, or HTML reports — just honest timings on stderr-free stdout.
//!
//! `cargo bench` invokes the harness with `--bench`; `cargo test` (when bench
//! targets are tested) passes `--test`, in which case each benchmark runs a
//! single iteration as a smoke check.

use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark, as in `bench_with_input`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures under measurement inside `bench_function` callbacks.
pub struct Bencher<'a> {
    budget: Duration,
    smoke_only: bool,
    report: &'a mut Vec<(String, Duration, u64)>,
    label: String,
}

impl Bencher<'_> {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.smoke_only {
            hint::black_box(f());
            self.report.push((self.label.clone(), Duration::ZERO, 1));
            return;
        }
        // Warm up and estimate per-iteration cost with a single call.
        let start = Instant::now();
        hint::black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            hint::black_box(f());
        }
        self.report
            .push((self.label.clone(), start.elapsed(), iters));
    }

    /// Like [`Bencher::iter`], but rebuilds the routine's input with `setup`
    /// before every timed call; only the routine is measured.
    pub fn iter_with_setup<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        if self.smoke_only {
            hint::black_box(routine(setup()));
            self.report.push((self.label.clone(), Duration::ZERO, 1));
            return;
        }
        // Warm up and estimate per-iteration cost with a single call.
        let input = setup();
        let start = Instant::now();
        hint::black_box(routine(input));
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / estimate.as_nanos()).clamp(1, 1_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            measured += start.elapsed();
        }
        self.report.push((self.label.clone(), measured, iters));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Top-level benchmark driver, a minimal stand-in for `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_only = std::env::args().any(|a| a == "--test");
        Self {
            budget: Duration::from_millis(300),
            smoke_only,
        }
    }
}

impl Criterion {
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            results: Vec::new(),
        }
    }

    #[doc(hidden)]
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    results: Vec<(String, Duration, u64)>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time budget.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.criterion.budget = budget;
        self
    }

    fn qualified(&self, id: &str) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = self.qualified(&id.to_string());
        let mut bencher = Bencher {
            budget: self.criterion.budget,
            smoke_only: self.criterion.smoke_only,
            report: &mut self.results,
            label,
        };
        f(&mut bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {
        for (label, total, iters) in &self.results {
            if *iters == 1 && total.is_zero() {
                println!("{label:<40} smoke-tested (1 iteration)");
            } else {
                let per_iter = *total / (*iters as u32).max(1);
                println!(
                    "{label:<40} {:>12}/iter  ({iters} iters in {})",
                    format_duration(per_iter),
                    format_duration(*total),
                );
            }
        }
    }
}

/// Throughput annotation, accepted and ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.measurement_time(Duration::from_millis(5));
        c.bench_function("sum_0_to_99", |b| b.iter(|| (0u64..100).sum::<u64>()));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion {
            budget: Duration::from_millis(5),
            smoke_only: false,
        };
        trivial_bench(&mut criterion);
    }
}
