//! Offline shim for the subset of `parking_lot` used by this workspace.
//!
//! Wraps `std::sync` locks behind parking_lot's non-poisoning API: `lock` /
//! `read` / `write` return guards directly instead of `Result`s. Poisoning is
//! translated into recovery (`into_inner` on the poison error), which matches
//! parking_lot's behavior of not propagating panics through locks.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }
}
