//! Workspace facade for the LOVO reproduction.
//!
//! Re-exports every `lovo-*` crate under one roof so downstream users (and the
//! workspace-level integration tests and examples) can depend on a single
//! package. The crate-per-module layout mirrors Fig. 3 of the paper; see the
//! individual crates for the real documentation:
//!
//! * [`tensor`] — minimal dense linear-algebra substrate
//! * [`video`] — synthetic video datasets, frames, objects, queries
//! * [`encoder`] — visual/text encoders and the cross-modality transformer
//! * [`index`] — ANN index families (flat, IVF-PQ, HNSW) and product quantization
//! * [`store`] — vector collections + relational metadata joined by patch id
//! * [`core`] — the two-stage LOVO engine (Algorithm 2)
//! * [`serve`] — the concurrent query service (worker pool, micro-batching,
//!   result cache, background maintenance)
//! * [`eval`] — metrics, workloads, and the paper's figure/table experiments
//! * [`baselines`] — FIGO/MIRIS/VOCAL/ZELDA/VisA/UMT comparison systems

pub use lovo_baselines as baselines;
pub use lovo_core as core;
pub use lovo_encoder as encoder;
pub use lovo_eval as eval;
pub use lovo_index as index;
pub use lovo_serve as serve;
pub use lovo_store as store;
pub use lovo_tensor as tensor;
pub use lovo_video as video;
