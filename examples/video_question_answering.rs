//! Video question answering: the ActivityNet-QA extension of §VII-F.
//!
//! Yes/no questions about object attributes are treated as object queries;
//! a video answers "yes" when LOVO grounds the described object in one of its
//! frames with a sufficiently high cross-modality score.
//!
//! ```bash
//! cargo run --release --example video_question_answering
//! ```

use lovo_baselines::{LovoSystem, ObjectQuerySystem};
use lovo_eval::experiments::{evaluate_query, ACCURACY_TOP_K};
use lovo_eval::extension_queries;
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};

fn main() {
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::ActivityNetQa)
            .with_num_videos(12)
            .with_frames_per_video(150),
    );
    let mut lovo = LovoSystem::default();
    let pre = lovo.preprocess(&videos);
    println!(
        "indexed {} videos ({} frames) in {:.1}s modeled processing\n",
        videos.videos.len(),
        videos.total_frames(),
        pre.modeled_seconds
    );

    for question in extension_queries() {
        let (ap, response) = evaluate_query(&lovo, &videos, &question, ACCURACY_TOP_K);
        // Per-video yes/no answer: does any returned frame of that video carry
        // a confident grounding?
        let mut positive_videos: Vec<u32> = response
            .hits
            .iter()
            .filter(|h| h.score > 0.5)
            .map(|h| h.video_id)
            .collect();
        positive_videos.sort_unstable();
        positive_videos.dedup();
        println!("{}  \"{}\"", question.id, question.text);
        println!(
            "  AveP {:.2}, search {:.1}s (modeled); videos answering \"yes\": {:?}",
            ap, response.modeled_seconds, positive_videos
        );
    }
    println!(
        "\nExpected shape (paper Table VII): AveP in the 0.7-1.0 range on all four questions."
    );
}
