//! Traffic-surveillance scenario: compare LOVO against the QD-search baselines
//! on the Bellevue-style intersection camera, for both a normal and a complex
//! query — the workload that motivates the paper's introduction.
//!
//! ```bash
//! cargo run --release --example traffic_surveillance
//! ```

use lovo_baselines::{Figo, LovoSystem, Miris, ObjectQuerySystem, Vocal};
use lovo_eval::experiments::{evaluate_query, ACCURACY_TOP_K};
use lovo_eval::queries_for;
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};

fn main() {
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(900),
    );
    let queries = queries_for(DatasetKind::Bellevue);

    let mut vocal = Vocal::new();
    let vocal_pre = vocal.preprocess(&videos);
    let miris = Miris::new();
    let figo = Figo::new();
    let mut lovo = LovoSystem::default();
    let lovo_pre = lovo.preprocess(&videos);
    println!(
        "one-time processing (modeled): VOCAL {:.1}s, LOVO {:.1}s, QD-search ~0s\n",
        vocal_pre.modeled_seconds, lovo_pre.modeled_seconds
    );

    println!(
        "{:<6} {:<10} {:>8} {:>14} {:>12}",
        "query", "system", "AveP", "search (s)", "supported"
    );
    for query in &queries {
        let systems: Vec<&dyn ObjectQuerySystem> = vec![&vocal, &miris, &figo, &lovo];
        for system in systems {
            let (ap, response) = evaluate_query(system, &videos, query, ACCURACY_TOP_K);
            println!(
                "{:<6} {:<10} {:>8.2} {:>14.1} {:>12}",
                query.id,
                system.name(),
                ap,
                response.modeled_seconds,
                response.supported
            );
        }
        println!();
    }
    println!("Expected shape (paper Fig. 6 / Fig. 8): LOVO reaches the highest AveP on the complex queries (Q2.2, Q2.4) while its search time stays one to two orders of magnitude below the QD-search systems.");
}
