//! Quickstart: build LOVO over a synthetic traffic-surveillance collection and
//! run a complex object query.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use lovo_core::{Lovo, LovoConfig, QuerySpec};
use lovo_video::{DatasetConfig, DatasetKind, QueryPredicate, VideoCollection};

fn main() {
    // 1. A video collection. In a real deployment this wraps decoded video;
    //    here the synthetic Bellevue-style generator stands in (see DESIGN.md).
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(600),
    );
    println!(
        "collection: {} videos, {} frames, {} object observations",
        videos.videos.len(),
        videos.total_frames(),
        videos.total_object_observations()
    );

    // 2. One-time video summary + indexing (query-agnostic).
    let lovo = Lovo::build(&videos, LovoConfig::default()).expect("build LOVO");
    let stats = lovo.ingest_stats();
    println!(
        "ingested: {} key frames -> {} patch embeddings in {:.2}s (encode {:.2}s, index {:.2}s)",
        stats.key_frames,
        stats.patches_indexed,
        stats.total_seconds(),
        stats.encoding_seconds,
        stats.indexing_seconds
    );

    // 3. Complex object queries: open vocabulary, detailed descriptions.
    for query in [
        "a red car driving in the center of the road",
        "a red car side by side with another car, both positioned in the center of the road",
        "a bus driving on the road with white roof and yellow-green body",
    ] {
        let result = lovo.query(query).expect("query");
        println!("\nquery: {query}");
        println!(
            "  fast search: {} candidates, rerank: {} frames",
            result.fast_search_candidates, result.reranked_frames,
        );
        println!("  stages: {}", result.breakdown());
        for (rank, hit) in result.frames.iter().take(3).enumerate() {
            println!(
                "  #{rank}: video {} frame {} @ {:.1}s  score {:.3}  box ({:.0},{:.0},{:.0},{:.0})",
                hit.video_id,
                hit.frame_index,
                hit.timestamp,
                hit.score,
                hit.bbox.x,
                hit.bbox.y,
                hit.bbox.w,
                hit.bbox.h
            );
        }
    }

    // 4. Filtered query: the same engine, restricted to a time window — the
    //    predicate is compiled by the planner and pushed down through the
    //    storage fan-out into every index scan.
    let spec = QuerySpec::new("a red car driving in the center of the road")
        .with_predicate(QueryPredicate::time_range(2.0, 8.0));
    println!("\nfiltered query plan: {}", lovo.plan(&spec).describe());
    let result = lovo.query_spec(&spec).expect("filtered query");
    println!(
        "  {} candidates (filtered out {} inside the scans)",
        result.fast_search_candidates, result.search_stats.filtered_out,
    );
    println!("  stages: {}", result.breakdown());
    for (rank, hit) in result.frames.iter().take(3).enumerate() {
        println!(
            "  #{rank}: video {} frame {} @ {:.1}s  score {:.3}",
            hit.video_id, hit.frame_index, hit.timestamp, hit.score,
        );
    }
}
