//! Concurrent serving demo: many client threads sharing one `QueryService`.
//!
//! Shows the three serving mechanisms working together — micro-batch
//! coalescing (concurrent submissions share one engine pass), the plan-keyed
//! result cache (repeat queries skip the engine entirely), and admission
//! control (a deliberately tiny queue rejecting part of a burst with a typed
//! error) — plus the serve-side `wait` component of the latency breakdown.
//!
//! Run with `cargo run --release --example concurrent_serving`.

use lovo::core::{Lovo, LovoConfig, QuerySpec};
use lovo::serve::{QueryService, ServeConfig, ServeError};
use lovo::video::{DatasetConfig, DatasetKind, VideoCollection};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    println!("== build ==");
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(240)
            .with_seed(11),
    );
    let engine = Arc::new(Lovo::build(&videos, LovoConfig::default()).expect("build engine"));
    println!("indexed {} patches", engine.indexed_patches());

    let service = QueryService::start(
        Arc::clone(&engine),
        ServeConfig::default().with_batch_window(Duration::from_millis(1)),
    )
    .expect("start service");

    let queries = [
        "a red car driving in the center of the road",
        "a bus driving on the road",
        "a person walking on the sidewalk",
        "a red car side by side with another car",
    ];

    println!(
        "\n== 8 concurrent clients x 3 rounds over {} distinct queries ==",
        queries.len()
    );
    std::thread::scope(|scope| {
        for client in 0..8 {
            let service = &service;
            let queries = &queries;
            scope.spawn(move || {
                for round in 0..3 {
                    let text = queries[(client + round) % queries.len()];
                    let served = service.submit(QuerySpec::new(text)).expect("submit");
                    if client == 0 {
                        println!(
                            "client 0 round {round}: {} frames, cache_hit={}, \
                             coalesced_with={}, {}",
                            served.result.frames.len(),
                            served.cache_hit,
                            served.coalesced_with,
                            served.result.breakdown()
                        );
                    }
                }
            });
        }
    });
    let stats = service.stats();
    println!(
        "served {} submissions with {} engine passes ({} distinct plans executed, \
         {} cache hits, {} coalesced)",
        stats.submitted,
        stats.engine_batches,
        stats.engine_queries,
        stats.cache_hits,
        stats.coalesced
    );

    println!("\n== overload: a 32-submission burst into queue depth 2 ==");
    let tight = QueryService::start(
        Arc::clone(&engine),
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(2)
            .with_max_batch(1)
            .with_cache_capacity(0)
            .with_maintenance_interval(None),
    )
    .expect("start tight service");
    let rejected = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for client in 0..32 {
            let tight = &tight;
            let rejected = &rejected;
            scope.spawn(move || {
                match tight.submit(QuerySpec::new(format!("a car number {client}"))) {
                    Ok(_) => {}
                    Err(ServeError::Rejected { .. }) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            });
        }
    });
    println!(
        "{} of 32 submissions rejected with the typed overload error; the rest \
         completed within the bounded queue",
        rejected.load(Ordering::Relaxed)
    );
}
