//! Incremental ingest: append new footage to a live LOVO deployment without
//! rebuilding what is already indexed.
//!
//! The segmented storage engine makes `Lovo::add_videos` cost proportional to
//! the appended batch: new patches land in a growing segment that seals into
//! its own ANN index, existing sealed segments are untouched, and queries fan
//! out over all segments in parallel. After many small appends, `compact()`
//! merges undersized segments to bound the fan-out width.
//!
//! ```bash
//! cargo run --release --example incremental_ingest
//! ```

use lovo_core::{Lovo, LovoConfig};
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};

fn main() {
    let frames = 400;
    let base = DatasetConfig::for_kind(DatasetKind::Bellevue).with_frames_per_video(frames);

    // 1. Initial deployment over the first night of footage.
    let first = VideoCollection::generate(base.clone().with_seed(101));
    let lovo = Lovo::build(&first, LovoConfig::default()).expect("build LOVO");
    let stats = lovo.collection_stats();
    println!(
        "initial build: {} patches in {} sealed segment(s), {} index build(s), {:.2}s",
        stats.entities,
        stats.sealed_segments,
        stats.index_builds,
        lovo.ingest_stats().total_seconds()
    );

    // 2. New footage arrives (e.g. the next camera shift): append it.
    //    Video ids must be fresh — patch ids embed them.
    let mut offset = first.videos.len() as u32;
    for (night, seed) in [(2u32, 103u64), (3, 107)] {
        let mut batch = VideoCollection::generate(base.clone().with_seed(seed));
        for video in &mut batch.videos {
            video.id += offset;
        }
        offset += batch.videos.len() as u32;

        let run = lovo.add_videos(&batch).expect("append batch");
        let stats = lovo.collection_stats();
        println!(
            "night {night}: appended {} patches in {:.2}s — sealed {} new segment(s), \
             collection now {} entities / {} segments ({} lifetime builds)",
            run.patches_indexed,
            run.total_seconds(),
            run.segments_sealed,
            stats.entities,
            stats.sealed_segments,
            stats.index_builds
        );
    }

    // 3. Queries span everything ingested so far.
    let query = "a red car driving in the center of the road";
    let result = lovo.query(query).expect("query");
    println!(
        "\nquery: {query}\n  {} candidates from {} segment(s) in {:.4}s, top hit video {} frame {}",
        result.fast_search_candidates,
        result.search_stats.segments_probed,
        result.timings.fast_search_seconds,
        result.frames[0].video_id,
        result.frames[0].frame_index
    );

    // 4. Housekeeping: merge the undersized per-night segments.
    let entities_before = lovo.collection_stats().entities;
    let compaction = lovo.compact().expect("compact");
    let stats = lovo.collection_stats();
    println!(
        "\ncompaction: merged {} undersized segment(s) into {}, fan-out now {} segment(s)",
        compaction.segments_merged, compaction.segments_created, stats.sealed_segments
    );
    assert_eq!(
        stats.entities, entities_before,
        "compaction must not lose rows"
    );

    let after = lovo.query(query).expect("query after compaction");
    assert!(!after.frames.is_empty());
    println!(
        "post-compaction query probes {} segment(s), top hit video {} frame {}",
        after.search_stats.segments_probed, after.frames[0].video_id, after.frames[0].frame_index
    );
}
