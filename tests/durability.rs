//! Engine-level durability: build LOVO over a durable store, kill it (drop
//! with no shutdown path), reopen with [`Lovo::open`], and require the
//! reopened engine to answer queries identically to the original — including
//! the rerank stage, whose key frames come back from the persisted blobs
//! rather than from re-ingesting footage.

use lovo_core::{DurabilityConfig, Lovo, LovoConfig};
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};
use std::path::PathBuf;

fn scratch_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lovo-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn videos(seed: u64, frames: usize) -> VideoCollection {
    VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(frames)
            .with_seed(seed),
    )
}

const QUERIES: &[&str] = &[
    "a red car driving in the center of the road",
    "a bus on the road",
    "a person walking on the sidewalk",
];

#[test]
fn reopened_engine_answers_queries_identically() {
    let root = scratch_root("identical");
    let footage = videos(7, 120);
    let config = LovoConfig::default().with_segment_capacity(500);
    let lovo = Lovo::build_durable(&footage, config, &root, DurabilityConfig::new()).unwrap();
    let before: Vec<_> = QUERIES.iter().map(|q| lovo.query(q).unwrap()).collect();
    let stats_before = lovo.collection_stats();
    drop(lovo); // no shutdown hook exists — this IS the kill -9 model

    let (reopened, report) = Lovo::open(config, &root, DurabilityConfig::new()).unwrap();
    assert!(
        report.is_clean(),
        "clean shutdown must recover losslessly: {report:?}"
    );
    assert!(report.segments_loaded >= 1);
    let stats_after = reopened.collection_stats();
    assert_eq!(stats_after.entities, stats_before.entities);
    for (query, old) in QUERIES.iter().zip(&before) {
        let new = reopened.query(query).unwrap();
        assert_eq!(
            new.frames, old.frames,
            "query {query:?} diverged after reopen (rerank frames lost?)"
        );
        assert!(
            !new.frames.is_empty(),
            "query {query:?} must still rank frames"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn reopened_engine_keeps_ingesting_and_rejects_recovered_video_ids() {
    let root = scratch_root("ingest");
    let config = LovoConfig::default();
    {
        Lovo::build_durable(&videos(7, 90), config, &root, DurabilityConfig::new()).unwrap();
    }
    let (reopened, _) = Lovo::open(config, &root, DurabilityConfig::new()).unwrap();
    // Recovered video ids stay reserved: re-ingesting them would silently
    // collide patch ids with the recovered rows.
    assert!(
        reopened.add_videos(&videos(7, 90)).is_err(),
        "duplicate video ids must stay rejected across a restart"
    );
    // Fresh ids append fine, durably.
    let mut batch = videos(43, 90);
    for video in &mut batch.videos {
        video.id += 1000;
    }
    let entities_before = reopened.collection_stats().entities;
    reopened.add_videos(&batch).unwrap();
    let entities_after = reopened.collection_stats().entities;
    assert!(entities_after > entities_before);
    drop(reopened);
    let (again, report) = Lovo::open(config, &root, DurabilityConfig::new()).unwrap();
    assert!(report.is_clean());
    assert_eq!(again.collection_stats().entities, entities_after);
    let result = again.query("a bus on the road").unwrap();
    assert!(!result.frames.is_empty());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn open_rejects_a_mismatched_embedding_dimensionality() {
    let root = scratch_root("dim");
    let config = LovoConfig::default();
    {
        Lovo::build_durable(&videos(7, 90), config, &root, DurabilityConfig::new()).unwrap();
    }
    let mut narrower = LovoConfig::default();
    narrower.visual.class_dim = config.visual.class_dim / 2;
    narrower.text.class_dim = narrower.visual.class_dim;
    narrower.cross_modality.class_dim = narrower.visual.class_dim;
    let err = Lovo::open(narrower, &root, DurabilityConfig::new());
    assert!(
        err.is_err(),
        "a store built at another dim must be refused up front"
    );
    // The right config still opens.
    assert!(Lovo::open(config, &root, DurabilityConfig::new()).is_ok());
    let _ = std::fs::remove_dir_all(&root);
}
