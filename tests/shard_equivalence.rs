//! Differential harness for sharded serving: for every corpus × placement ×
//! predicate combination, a [`ShardRouter`] over N engine shards must return
//! results *bit-identical* to a single never-sharded engine holding the whole
//! corpus — same frames (scores, boxes, order), same candidate count, same
//! rerank width.
//!
//! All equivalence runs use the exact brute-force index
//! (`LovoConfig::ablation_without_anns()`): IVF-PQ trains its codebooks on
//! the segment's own vectors, so per-shard quantizers would legitimately
//! differ from the single-engine quantizer and approximate scores would
//! drift. Equivalence is a property of exact scoring; the approximate
//! configurations are covered by their own recall gates elsewhere.

use lovo::core::{Lovo, LovoConfig, QuerySpec};
use lovo::serve::{
    partition_videos, HashPlacement, LocalShard, Placement, ShardConfig, ShardRouter,
};
use lovo::video::{DatasetConfig, DatasetKind, ObjectClass, QueryPredicate, VideoCollection};
use std::sync::Arc;

const SEEDS: &[u64] = &[11, 29];
const VIDEOS: usize = 8;
const FRAMES: usize = 40;

fn corpus(seed: u64) -> VideoCollection {
    VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(VIDEOS)
            .with_frames_per_video(FRAMES)
            .with_seed(seed),
    )
}

/// Exact-scoring engine configuration shared by the twin and every shard.
fn exact_config() -> LovoConfig {
    LovoConfig::ablation_without_anns()
}

/// Builds the sharded side of the differential pair: partition the corpus
/// under a hash placement, one engine per part, one router over them.
fn build_router(videos: &VideoCollection, shards: usize, config: LovoConfig) -> ShardRouter {
    let placement = Arc::new(HashPlacement::new(shards));
    let engines: Vec<Arc<dyn lovo::serve::EngineShard>> =
        partition_videos(videos, placement.as_ref())
            .iter()
            .map(|part| {
                let engine = Lovo::build(part, config).expect("build shard engine");
                Arc::new(LocalShard::new(Arc::new(engine))) as Arc<dyn lovo::serve::EngineShard>
            })
            .collect();
    ShardRouter::new(engines, placement, config, ShardConfig::default()).expect("build router")
}

/// The predicate mix every (corpus, placement) pair is checked under:
/// unfiltered, video subsets that span shards, a single video, time windows,
/// class restrictions, conjunctions, and a provably-empty predicate.
fn spec_mix() -> Vec<QuerySpec> {
    vec![
        QuerySpec::new("a red car driving in the center of the road"),
        QuerySpec::new("a bus driving on the road"),
        QuerySpec::new("a person walking on the sidewalk")
            .with_predicate(QueryPredicate::videos([0, 3, 5])),
        QuerySpec::new("a car on the road").with_predicate(QueryPredicate::videos([2])),
        QuerySpec::new("a car turning at the intersection")
            .with_predicate(QueryPredicate::time_range(0.25, 0.9)),
        QuerySpec::new("a bus at a bus stop")
            .with_predicate(QueryPredicate::class(ObjectClass::Bus)),
        QuerySpec::new("a person crossing the street").with_predicate(
            QueryPredicate::time_range(0.0, 1.2).and(QueryPredicate::class(ObjectClass::Person)),
        ),
        // Provably empty: no video can ever satisfy an empty id set.
        QuerySpec::new("anything at all").with_predicate(QueryPredicate::videos([])),
    ]
}

/// The differential check itself: every spec answered by the router must be
/// bit-identical to the never-sharded twin's answer, with no outages.
fn assert_equivalent(videos: &VideoCollection, shards: usize, config: LovoConfig) {
    let single = Lovo::build(videos, config).expect("build single engine");
    let router = build_router(videos, shards, config);
    for spec in spec_mix() {
        let expected = single.query_spec(&spec).expect("single-engine query");
        let sharded = router.query_spec(&spec).expect("routed query");
        assert!(
            sharded.outages.is_empty(),
            "{shards}-shard gather reported outages on a healthy run: {:?}",
            sharded.outages
        );
        assert_eq!(
            sharded.result.frames, expected.frames,
            "{shards}-shard frames diverged from the single engine for {:?}",
            spec
        );
        assert_eq!(
            sharded.result.fast_search_candidates, expected.fast_search_candidates,
            "{shards}-shard candidate count diverged for {:?}",
            spec
        );
        assert_eq!(
            sharded.result.reranked_frames, expected.reranked_frames,
            "{shards}-shard rerank width diverged for {:?}",
            spec
        );
    }
    let stats = router.stats();
    assert_eq!(stats.queries, spec_mix().len() as u64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.outages, 0);
}

#[test]
fn one_shard_matches_single_engine() {
    for &seed in SEEDS {
        assert_equivalent(&corpus(seed), 1, exact_config());
    }
}

#[test]
fn two_shards_match_single_engine() {
    for &seed in SEEDS {
        assert_equivalent(&corpus(seed), 2, exact_config());
    }
}

#[test]
fn four_shards_match_single_engine() {
    for &seed in SEEDS {
        assert_equivalent(&corpus(seed), 4, exact_config());
    }
}

#[test]
fn seven_shards_match_single_engine() {
    // 7 shards over 8 videos: some shards are empty, which exercises the
    // empty-shard pruning path (`video_range() == None`) on every query.
    for &seed in SEEDS {
        assert_equivalent(&corpus(seed), 7, exact_config());
    }
}

#[test]
fn equivalence_holds_without_rerank() {
    // The no-rerank path merges under a different total order (score desc,
    // then (video, frame) asc) and assembles straight from the coarse seeds;
    // it must be bit-identical too.
    assert_equivalent(&corpus(17), 4, exact_config().with_rerank(false));
}

#[test]
fn equivalence_holds_under_k_overrides() {
    // Spec-level fast-search-k overrides travel inside the compiled plan;
    // tiny and over-large k both stress the top-k merge truncation.
    let videos = corpus(23);
    let single = Lovo::build(&videos, exact_config()).expect("build single engine");
    let router = build_router(&videos, 4, exact_config());
    for k in [1, 3, 10_000] {
        let spec = QuerySpec::new("a red car driving in the center of the road").with_k(k);
        let expected = single.query_spec(&spec).expect("single-engine query");
        let sharded = router.query_spec(&spec).expect("routed query");
        assert!(sharded.outages.is_empty());
        assert_eq!(sharded.result.frames, expected.frames, "k = {k}");
        assert_eq!(
            sharded.result.fast_search_candidates, expected.fast_search_candidates,
            "k = {k}"
        );
    }
}

#[test]
fn partition_is_a_disjoint_cover_under_every_placement() {
    // The precondition for the bit-identical merge: each video lands on
    // exactly one shard and none is dropped.
    let videos = corpus(5);
    for shards in [1usize, 2, 4, 7] {
        let placement = HashPlacement::new(shards);
        let parts = partition_videos(&videos, &placement);
        assert_eq!(parts.len(), shards);
        let total: usize = parts.iter().map(|part| part.videos.len()).sum();
        assert_eq!(total, videos.videos.len());
        for (index, part) in parts.iter().enumerate() {
            for video in &part.videos {
                assert_eq!(placement.shard_of(video.id), index);
            }
        }
    }
}
