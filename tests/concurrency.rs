//! Concurrent-access coverage for the `Lovo` engine: many threads querying
//! while others read stats and metadata. The segmented storage engine
//! reshaped the `RwLock` paths inside `VectorDatabase` (per-batch write
//! locking, fan-out reads across segments); these tests pin down that
//! read-side concurrency stays safe and coherent.

use lovo_core::{Lovo, LovoConfig};
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};
use std::sync::atomic::{AtomicUsize, Ordering};

fn build_engine(frames: usize) -> Lovo {
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(frames)
            .with_seed(77),
    );
    // A small segment capacity forces a multi-segment collection so the
    // parallel fan-out path is what the query threads exercise.
    Lovo::build(&videos, LovoConfig::default().with_segment_capacity(300)).expect("build")
}

#[test]
fn concurrent_queries_and_stats_reads_are_coherent() {
    let lovo = build_engine(240);
    let expected_patches = lovo.indexed_patches();
    assert!(lovo.collection_stats().sealed_segments > 1);

    let queries = [
        "a red car driving in the center of the road",
        "a bus driving on the road",
        "a red car side by side with another car",
        "a car on the road",
    ];
    let completed = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // Query threads: repeated two-stage searches.
        for (worker, text) in queries.iter().enumerate() {
            let lovo = &lovo;
            let completed = &completed;
            scope.spawn(move || {
                for round in 0..3 {
                    let result = lovo.query(text).expect("query");
                    assert!(
                        !result.frames.is_empty(),
                        "worker {worker} round {round} got no frames"
                    );
                    // Scores stay sorted under concurrency.
                    for pair in result.frames.windows(2) {
                        assert!(pair[0].score >= pair[1].score);
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Stats/metadata readers racing the queries on the same RwLocks.
        for _ in 0..2 {
            let lovo = &lovo;
            scope.spawn(move || {
                for _ in 0..20 {
                    assert_eq!(lovo.indexed_patches(), expected_patches);
                    let stats = lovo.collection_stats();
                    assert_eq!(stats.entities, expected_patches);
                    assert!(stats.sealed_segments > 1);
                    assert!(lovo.storage_bytes() > 0);
                    assert_eq!(lovo.database().metadata_rows(), expected_patches);
                    std::thread::yield_now();
                }
            });
        }
    });

    assert_eq!(completed.load(Ordering::Relaxed), queries.len() * 3);
}

#[test]
fn queries_race_metadata_frame_lookups() {
    let lovo = build_engine(180);
    let sample_frame = {
        let result = lovo.query("a car on the road").expect("seed query");
        let top = &result.frames[0];
        (top.video_id, top.frame_index)
    };

    std::thread::scope(|scope| {
        let lovo = &lovo;
        scope.spawn(move || {
            for _ in 0..3 {
                let result = lovo.query("a bus driving on the road").expect("query");
                assert!(result.fast_search_candidates > 0);
            }
        });
        scope.spawn(move || {
            for _ in 0..50 {
                // Rerank-style metadata reads: all patches of a frame.
                let patches = lovo
                    .database()
                    .frame_patches(sample_frame.0, sample_frame.1);
                assert!(!patches.is_empty());
                for patch in &patches {
                    assert_eq!(patch.video_id, sample_frame.0);
                    assert_eq!(patch.frame_index, sample_frame.1);
                }
                std::thread::yield_now();
            }
        });
    });
}
