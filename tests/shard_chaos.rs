//! Chaos tests for the shard router's gather: a shard lost mid-gather —
//! injected fault, panic, engine error, or deadline overrun — must degrade
//! into a partial result carrying a [`ShardOutage`] for exactly that shard.
//! The router must never hang and never panic, and the degraded answer must
//! be exact for every surviving shard's videos.

use lovo::core::{Lovo, LovoConfig, QuerySpec};
use lovo::serve::{
    partition_videos, CoarseRequest, CoarseResponse, EngineShard, HashPlacement, LocalShard,
    Placement, RerankRequest, RerankResponse, ShardConfig, ShardRouter,
};
use lovo::video::{DatasetConfig, DatasetKind, QueryPredicate, VideoCollection};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn corpus(seed: u64) -> VideoCollection {
    VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(8)
            .with_frames_per_video(30)
            .with_seed(seed),
    )
}

fn exact_config() -> LovoConfig {
    LovoConfig::ablation_without_anns()
}

/// Builds shard engines from a hash partition of `videos`.
fn shard_engines(videos: &VideoCollection, shards: usize) -> Vec<Arc<Lovo>> {
    partition_videos(videos, &HashPlacement::new(shards))
        .iter()
        .map(|part| Arc::new(Lovo::build(part, exact_config()).expect("build shard engine")))
        .collect()
}

fn local_shards(engines: &[Arc<Lovo>]) -> Vec<Arc<dyn EngineShard>> {
    engines
        .iter()
        .map(|engine| Arc::new(LocalShard::new(Arc::clone(engine))) as Arc<dyn EngineShard>)
        .collect()
}

/// Fault-injected outage via the `shard.gather.<index>` fail point (PR 8's
/// deterministic [`FaultPlan`], lifted to the serving layer). Compiled only
/// where the fault checks exist: debug builds or `--features failpoints`.
#[cfg(any(debug_assertions, feature = "failpoints"))]
mod injected {
    use super::*;
    use lovo::store::durability::{points, FaultAction, FaultPlan};

    #[test]
    fn killed_shard_degrades_to_exact_answer_over_survivors() {
        let videos = corpus(7);
        let shards = 4usize;
        let placement = HashPlacement::new(shards);
        let victim = 1usize;
        assert!(
            videos
                .videos
                .iter()
                .any(|v| placement.shard_of(v.id) == victim),
            "victim shard must hold videos for the test to be meaningful"
        );

        let faults = Arc::new(FaultPlan::new());
        faults.inject(
            &format!("{}.{victim}", points::SHARD_GATHER),
            FaultAction::Fail,
        );
        let router = ShardRouter::new(
            local_shards(&shard_engines(&videos, shards)),
            Arc::new(HashPlacement::new(shards)),
            exact_config(),
            ShardConfig::default().with_faults(Arc::clone(&faults)),
        )
        .expect("build router");

        let spec = QuerySpec::new("a red car driving in the center of the road");
        let degraded = router.query_spec(&spec).expect("degraded gather still Ok");

        // Exactly the victim is reported lost, and the fail point really
        // fired (the fault exercised the gather leg, not some other path).
        assert!(degraded.is_degraded());
        assert_eq!(degraded.outages.len(), 1);
        assert_eq!(degraded.outages[0].shard, victim);
        assert!(
            faults
                .triggered()
                .contains(&format!("{}.{victim}", points::SHARD_GATHER)),
            "fail point never fired: {:?}",
            faults.triggered()
        );
        assert_eq!(router.stats().outages, 1);

        // The partial answer is *exact over the survivors*: bit-identical to
        // a single engine that never held the victim's videos at all.
        let surviving = VideoCollection {
            config: videos.config.clone(),
            videos: videos
                .videos
                .iter()
                .filter(|v| placement.shard_of(v.id) != victim)
                .cloned()
                .collect(),
        };
        let twin = Lovo::build(&surviving, exact_config()).expect("build surviving twin");
        let expected = twin.query_spec(&spec).expect("twin query");
        assert_eq!(degraded.result.frames, expected.frames);
        assert_eq!(
            degraded.result.fast_search_candidates,
            expected.fast_search_candidates
        );

        // The fault was one-shot: the next identical query heals — survivors
        // answer from their caches, the victim is re-queried live, and the
        // result is the full-corpus answer again.
        let healed = router.query_spec(&spec).expect("healed gather");
        assert!(!healed.is_degraded());
        assert!(healed.coarse_cache_hits > 0, "survivors should hit cache");
        let full = Lovo::build(&videos, exact_config()).expect("build full twin");
        assert_eq!(
            healed.result.frames,
            full.query_spec(&spec).expect("full twin query").frames
        );
    }

    #[test]
    fn untargeted_gather_fault_kills_exactly_one_leg() {
        let videos = corpus(19);
        let faults = Arc::new(FaultPlan::new());
        faults.inject(points::SHARD_GATHER, FaultAction::Fail);
        let router = ShardRouter::new(
            local_shards(&shard_engines(&videos, 4)),
            Arc::new(HashPlacement::new(4)),
            exact_config(),
            ShardConfig::default().with_faults(Arc::clone(&faults)),
        )
        .expect("build router");

        let degraded = router
            .query_spec(&QuerySpec::new("a bus driving on the road"))
            .expect("degraded gather still Ok");
        // One-shot point, nondeterministic victim (work stealing): exactly
        // one leg dies, whichever worker consulted the plan first.
        assert_eq!(degraded.outages.len(), 1);
        assert_eq!(faults.triggered(), vec![points::SHARD_GATHER.to_string()]);
        assert_eq!(faults.pending(), 0);
    }
}

/// A shard whose coarse stage panics. Pretends to hold the whole id space so
/// pruning never protects it.
struct PanickingShard;

impl EngineShard for PanickingShard {
    fn epoch(&self) -> u64 {
        0
    }

    fn video_range(&self) -> Option<(u32, u32)> {
        Some((0, u32::MAX))
    }

    fn coarse(&self, _request: &CoarseRequest) -> Result<CoarseResponse, String> {
        panic!("shard blew up mid-coarse");
    }

    fn rerank(&self, _request: &RerankRequest) -> Result<RerankResponse, String> {
        panic!("shard blew up mid-rerank");
    }
}

#[test]
fn panicking_shard_is_an_outage_not_a_router_crash() {
    let videos = corpus(11);
    let mut shards = local_shards(&shard_engines(&videos, 3));
    shards[2] = Arc::new(PanickingShard);
    let router = ShardRouter::new(
        shards,
        Arc::new(HashPlacement::new(3)),
        exact_config(),
        // Depth-1 admission: if a panicked leg leaked its slot, the second
        // query below would be rejected instead of served.
        ShardConfig::default().with_shard_queue_depth(1),
    )
    .expect("build router");

    for round in 0..3 {
        let degraded = router
            .query_spec(&QuerySpec::new("a car on the road"))
            .expect("degraded gather still Ok");
        assert_eq!(degraded.outages.len(), 1, "round {round}");
        assert_eq!(degraded.outages[0].shard, 2);
        assert!(
            degraded.outages[0].reason.contains("panicked"),
            "unexpected reason: {}",
            degraded.outages[0].reason
        );
        assert!(!degraded.result.frames.is_empty());
        for frame in &degraded.result.frames {
            assert_ne!(HashPlacement::new(3).shard_of(frame.video_id), 2);
        }
    }
    assert_eq!(router.stats().outages, 3);
    assert_eq!(router.stats().rejected, 0);
}

/// A shard that answers correctly but far too slowly.
struct SlowShard {
    inner: LocalShard,
    delay: Duration,
}

impl EngineShard for SlowShard {
    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn video_range(&self) -> Option<(u32, u32)> {
        self.inner.video_range()
    }

    fn coarse(&self, request: &CoarseRequest) -> Result<CoarseResponse, String> {
        std::thread::sleep(self.delay);
        self.inner.coarse(request)
    }

    fn rerank(&self, request: &RerankRequest) -> Result<RerankResponse, String> {
        self.inner.rerank(request)
    }
}

#[test]
fn slow_shard_times_out_into_an_outage_without_stalling_the_router() {
    let videos = corpus(13);
    let engines = shard_engines(&videos, 2);
    // The slow shard sleeps far past the deadline; the deadline itself is
    // generous enough that the healthy shard's debug-build latency can never
    // trip it — only genuine stalls become outages.
    let slow = Arc::new(SlowShard {
        inner: LocalShard::new(Arc::clone(&engines[1])),
        delay: Duration::from_secs(30),
    });
    let mut shards = local_shards(&engines);
    shards[1] = slow;
    let router = ShardRouter::new(
        shards,
        Arc::new(HashPlacement::new(2)),
        exact_config(),
        ShardConfig::default().with_gather_timeout(Some(Duration::from_secs(5))),
    )
    .expect("build router");

    let start = Instant::now();
    let degraded = router
        .query_spec(&QuerySpec::new("a person walking on the sidewalk"))
        .expect("degraded gather still Ok");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(25),
        "router waited out the slow shard: {elapsed:?}"
    );
    assert_eq!(degraded.outages.len(), 1);
    assert_eq!(degraded.outages[0].shard, 1);
    assert!(
        degraded.outages[0].reason.contains("deadline"),
        "unexpected reason: {}",
        degraded.outages[0].reason
    );
    for frame in &degraded.result.frames {
        assert_eq!(HashPlacement::new(2).shard_of(frame.video_id), 0);
    }
}

/// A shard whose coarse stage works but whose rerank stage fails cleanly.
struct FailingRerankShard {
    inner: LocalShard,
}

impl EngineShard for FailingRerankShard {
    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn video_range(&self) -> Option<(u32, u32)> {
        self.inner.video_range()
    }

    fn coarse(&self, request: &CoarseRequest) -> Result<CoarseResponse, String> {
        self.inner.coarse(request)
    }

    fn rerank(&self, _request: &RerankRequest) -> Result<RerankResponse, String> {
        Err("rerank stage exploded".to_string())
    }
}

#[test]
fn rerank_stage_failure_degrades_like_a_coarse_one() {
    let videos = corpus(17);
    let engines = shard_engines(&videos, 2);
    let mut shards = local_shards(&engines);
    shards[1] = Arc::new(FailingRerankShard {
        inner: LocalShard::new(Arc::clone(&engines[1])),
    });
    let router = ShardRouter::new(
        shards,
        Arc::new(HashPlacement::new(2)),
        exact_config(),
        ShardConfig::default(),
    )
    .expect("build router");

    // Restrict the query to a video owned by the failing shard so its
    // rerank leg is guaranteed to be the only one dispatched.
    let placement = HashPlacement::new(2);
    let victim_video = videos
        .videos
        .iter()
        .map(|v| v.id)
        .find(|&id| placement.shard_of(id) == 1)
        .expect("shard 1 holds at least one video");
    let degraded = router
        .query_spec(
            &QuerySpec::new("a car on the road")
                .with_predicate(QueryPredicate::videos([victim_video])),
        )
        .expect("degraded gather still Ok");
    assert_eq!(degraded.outages.len(), 1);
    assert_eq!(degraded.outages[0].shard, 1);
    assert!(degraded.outages[0].reason.contains("rerank"));
    // The coarse stage succeeded (candidates were found) but every frame
    // rode on the failed rerank leg, so the output is empty — partial, typed,
    // and honest about it.
    assert!(degraded.result.fast_search_candidates > 0);
    assert!(degraded.result.frames.is_empty());
    assert_eq!(router.stats().outages, 1);
}
