//! Cross-crate serving-layer tests: the `QueryService` hammered from many
//! threads while the engine ingests concurrently.
//!
//! The load-bearing invariant is *freshness through the cache*: every cached
//! result is stamped with the ingest epoch it was computed under, and any
//! insert/seal/compaction bumps the live epoch, so a submission can never be
//! answered from a pre-ingest cache entry once the ingest has committed.

use lovo::core::{Lovo, LovoConfig, QuerySpec};
use lovo::serve::{QueryService, ServeConfig, ServeError};
use lovo::video::{DatasetConfig, DatasetKind, VideoCollection};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn collection(frames: usize, seed: u64, id_offset: u32) -> VideoCollection {
    let mut videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(frames)
            .with_seed(seed),
    );
    for video in &mut videos.videos {
        video.id += id_offset;
    }
    videos
}

#[test]
fn sixteen_threads_hammering_during_concurrent_ingest() {
    let engine =
        Arc::new(Lovo::build(&collection(180, 7, 0), LovoConfig::default()).expect("build engine"));
    let service = QueryService::start(
        Arc::clone(&engine),
        // Generous queue so this test exercises freshness, not admission
        // (overload has its own test below); short window to keep latency low.
        ServeConfig::default()
            .with_queue_depth(4096)
            .with_batch_window(Duration::from_micros(200)),
    )
    .expect("start service");

    let queries = [
        "a red car driving in the center of the road",
        "a bus driving on the road",
        "a person walking on the sidewalk",
        "a car on the road",
    ];
    let epoch_before = engine.ingest_epoch();
    let ingest_done = AtomicBool::new(false);
    let post_ingest_submissions = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // One ingest thread appending two batches mid-flight.
        {
            let engine = Arc::clone(&engine);
            let ingest_done = &ingest_done;
            scope.spawn(move || {
                for (round, seed) in [31u64, 37].into_iter().enumerate() {
                    let batch = collection(120, seed, 1000 * (round as u32 + 1));
                    engine.add_videos(&batch).expect("append");
                }
                ingest_done.store(true, Ordering::SeqCst);
            });
        }
        // 16 query threads hammering the service throughout.
        for worker in 0..16 {
            let service = &service;
            let engine = &engine;
            let ingest_done = &ingest_done;
            let post_ingest_submissions = &post_ingest_submissions;
            let text = queries[worker % queries.len()];
            scope.spawn(move || {
                // Keep hammering until the ingest has committed AND at least
                // a couple of post-ingest rounds ran, so invalidation is
                // always exercised regardless of relative thread speed.
                let mut rounds_after_ingest = 0;
                while rounds_after_ingest < 2 {
                    if ingest_done.load(Ordering::SeqCst) {
                        rounds_after_ingest += 1;
                    }
                    // Reading the epoch BEFORE submitting makes the freshness
                    // assertion sound: if the ingest had already committed by
                    // then, a stale pre-ingest answer must be impossible.
                    let ingest_was_done = ingest_done.load(Ordering::SeqCst);
                    let epoch_seen = engine.ingest_epoch();
                    let served = service.submit(QuerySpec::new(text)).expect("submit");
                    assert!(!served.result.frames.is_empty());
                    for pair in served.result.frames.windows(2) {
                        assert!(pair[0].score >= pair[1].score);
                    }
                    if ingest_was_done {
                        post_ingest_submissions.fetch_add(1, Ordering::Relaxed);
                        // No stale hit across the epoch bump: whatever this
                        // submission was answered from (engine pass or cache
                        // entry) was computed at a post-ingest epoch, which
                        // means pre-ingest cache entries were NOT served.
                        if served.cache_hit {
                            assert!(
                                epoch_seen > epoch_before,
                                "cache hit served although the epoch never moved?"
                            );
                        }
                    }
                }
            });
        }
    });

    assert!(
        engine.ingest_epoch() > epoch_before,
        "ingest must bump the epoch"
    );
    assert!(
        post_ingest_submissions.load(Ordering::Relaxed) > 0,
        "some submissions must land after the ingest to exercise invalidation"
    );
    let stats = service.stats();
    assert!(stats.submitted >= 16 * 2);
    assert_eq!(stats.rejected, 0);
    // The epoch bumps evicted at least the entries cached before the ingest
    // and re-requested after it.
    assert!(
        stats.cache_stale_evictions > 0,
        "expected stale evictions across the ingest: {stats:?}"
    );
    // With 4 distinct texts hammered by 16 threads, the cache must have
    // soaked up repeat traffic between epoch bumps.
    assert!(stats.cache_hits > 0, "{stats:?}");

    // Deterministic tail check: with the collection now quiescent, the first
    // submission of a fresh text computes, the second hits, and both see the
    // appended videos' footage searchable.
    let fresh = QuerySpec::new("a red car side by side with another car");
    let computed = service.submit(fresh.clone()).expect("submit");
    assert!(!computed.cache_hit);
    let cached = service.submit(fresh).expect("submit");
    assert!(cached.cache_hit);
    assert_eq!(cached.result.frames, computed.result.frames);
}

#[test]
fn overload_surfaces_typed_rejection_without_wedging_the_service() {
    let engine =
        Arc::new(Lovo::build(&collection(120, 5, 0), LovoConfig::default()).expect("build engine"));
    // One worker, one-query batches (`max_batch = 1` disables the coalescing
    // window), depth-2 queue: the throttle is per-query engine latency
    // (milliseconds) against a 16-thread burst arriving within microseconds,
    // so at most in-flight + 2 queued submissions can be served promptly and
    // the rest must be refused at the door.
    let service = QueryService::start(
        Arc::clone(&engine),
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(2)
            .with_max_batch(1)
            .with_cache_capacity(0)
            .with_maintenance_interval(None),
    )
    .expect("start service");

    let rejected = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for client in 0..16 {
            let service = &service;
            let rejected = &rejected;
            let completed = &completed;
            scope.spawn(move || {
                match service.submit(QuerySpec::new(format!("a car number {client}"))) {
                    Ok(served) => {
                        assert!(served.result.timings.queue_seconds >= 0.0);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ServeError::Rejected { queue_depth }) => {
                        assert_eq!(queue_depth, 2);
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            });
        }
    });
    // 16 near-simultaneous one-shot clients against a depth-2 queue and a
    // serve-one-at-a-time worker: some must be refused, the rest served.
    assert!(
        rejected.load(Ordering::Relaxed) >= 1,
        "no rejection under overload"
    );
    assert!(completed.load(Ordering::Relaxed) >= 1, "nothing completed");
    assert_eq!(
        rejected.load(Ordering::Relaxed) + completed.load(Ordering::Relaxed),
        16
    );
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected.load(Ordering::Relaxed) as u64);

    // The service is not wedged: a follow-up submission completes normally.
    let served = service
        .submit(QuerySpec::new("a bus"))
        .expect("post-overload submit");
    assert!(served.result.timings.queue_seconds >= 0.0);
}

#[test]
fn drop_under_load_completes_or_types_every_submission() {
    let engine = Arc::new(
        Lovo::build(&collection(120, 13, 0), LovoConfig::default()).expect("build engine"),
    );
    // Shared ownership so the teardown races the load for real: the main
    // thread relinquishes its handle while clients are mid-submit, and the
    // service Drop (stop admitting → drain the queue → join workers and the
    // maintenance thread) runs on whichever thread lets go of the last
    // reference — with the ingest thread still appending against the same
    // engine throughout.
    let service = Arc::new(
        QueryService::start(
            Arc::clone(&engine),
            // One slow worker and one-query batches so the queue is
            // genuinely non-empty for most of the run.
            ServeConfig::default()
                .with_workers(1)
                .with_queue_depth(64)
                .with_max_batch(1)
                .with_cache_capacity(0),
        )
        .expect("start service"),
    );

    let completed = Arc::new(AtomicUsize::new(0));
    let typed_errors = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();

    // Racing ingest through an engine handle independent of the service.
    {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            engine
                .add_videos(&collection(90, 41, 5000))
                .expect("append during teardown");
        }));
    }

    const CLIENTS: usize = 12;
    const ROUNDS: usize = 3;
    for client in 0..CLIENTS {
        let service = Arc::clone(&service);
        let completed = Arc::clone(&completed);
        let typed_errors = Arc::clone(&typed_errors);
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                let spec = QuerySpec::new(format!("a car number {client} round {round}"));
                match service.submit(spec) {
                    Ok(served) => {
                        assert!(!served.result.frames.is_empty());
                        assert!(served.result.timings.queue_seconds >= 0.0);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    // The only acceptable refusals are the typed ones.
                    Err(ServeError::Rejected { .. }) | Err(ServeError::ShuttingDown) => {
                        typed_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("submission neither served nor typed-refused: {other}"),
                }
            }
        }));
    }

    // Let go of the main handle while the clients above are still queued.
    drop(service);

    // Every thread joins — the drain guarantee means nothing can hang on an
    // unanswered reply channel, and no worker panics (a panicking pass
    // would surface as `WorkerLost`, which the match above rejects).
    for handle in handles {
        handle.join().expect("join under-teardown thread");
    }
    let completed = completed.load(Ordering::Relaxed);
    let typed_errors = typed_errors.load(Ordering::Relaxed);
    assert_eq!(completed + typed_errors, CLIENTS * ROUNDS);
    assert!(completed > 0, "nothing completed under load");

    // The racing ingest landed: the engine is still consistent afterwards.
    assert!(!engine
        .query("a car on the road")
        .expect("post-teardown query")
        .frames
        .is_empty());
}

#[test]
fn served_wait_time_separates_queue_from_engine_stages() {
    let engine =
        Arc::new(Lovo::build(&collection(120, 9, 0), LovoConfig::default()).expect("build engine"));
    // A 25 ms batch window with one worker guarantees a measurable serve-side
    // wait for submissions that arrive while the window is open.
    let service = QueryService::start(
        Arc::clone(&engine),
        ServeConfig::default()
            .with_workers(1)
            .with_batch_window(Duration::from_millis(25))
            .with_cache_capacity(0)
            .with_maintenance_interval(None),
    )
    .expect("start service");

    let direct = engine
        .query("a bus driving on the road")
        .expect("direct query");
    assert_eq!(direct.timings.queue_seconds, 0.0);
    assert!(direct.breakdown().starts_with("wait 0.00ms"));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..3 {
            let service = &service;
            handles.push(scope.spawn(move || {
                service
                    .submit(QuerySpec::new("a bus driving on the road"))
                    .expect("submit")
            }));
        }
        let mut max_wait = 0.0f64;
        for handle in handles {
            let served = handle.join().expect("join client");
            let timings = served.result.timings;
            assert!(timings.queue_seconds >= 0.0);
            assert!(timings.total_seconds() >= timings.queue_seconds);
            max_wait = max_wait.max(timings.queue_seconds);
        }
        // At least one submission waited out (part of) the batch window.
        assert!(
            max_wait >= 0.005,
            "expected a visible batch-window wait, got {max_wait}s"
        );
    });
}
