//! Cross-crate serving-layer tests: the `QueryService` hammered from many
//! threads while the engine ingests concurrently.
//!
//! The load-bearing invariant is *freshness through the cache*: every cached
//! result is stamped with the ingest epoch it was computed under, and any
//! insert/seal/compaction bumps the live epoch, so a submission can never be
//! answered from a pre-ingest cache entry once the ingest has committed.

use lovo::core::{Lovo, LovoConfig, QuerySpec};
use lovo::serve::{
    partition_videos, HashPlacement, LocalShard, QueryService, ServeConfig, ServeError,
    ShardConfig, ShardRouter,
};
use lovo::video::{DatasetConfig, DatasetKind, VideoCollection};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn collection(frames: usize, seed: u64, id_offset: u32) -> VideoCollection {
    let mut videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(frames)
            .with_seed(seed),
    );
    for video in &mut videos.videos {
        video.id += id_offset;
    }
    videos
}

/// Ingest epochs in the per-shard vector form the shard router exposes
/// (`ShardRouter::epochs`). A standalone engine is the one-shard case; the
/// freshness assertions below are written against the vector so they state
/// the invariant that actually generalizes: entry `s` moves exactly when
/// shard `s`'s collection changes.
fn engine_epochs(engine: &Lovo) -> Vec<u64> {
    vec![engine.ingest_epoch()]
}

/// True when any shard's epoch advanced past its `before` counterpart.
fn any_epoch_advanced(before: &[u64], now: &[u64]) -> bool {
    before.iter().zip(now).any(|(b, n)| n > b)
}

#[test]
fn sixteen_threads_hammering_during_concurrent_ingest() {
    let engine =
        Arc::new(Lovo::build(&collection(180, 7, 0), LovoConfig::default()).expect("build engine"));
    let service = QueryService::start(
        Arc::clone(&engine),
        // Generous queue so this test exercises freshness, not admission
        // (overload has its own test below); short window to keep latency low.
        ServeConfig::default()
            .with_queue_depth(4096)
            .with_batch_window(Duration::from_micros(200)),
    )
    .expect("start service");

    let queries = [
        "a red car driving in the center of the road",
        "a bus driving on the road",
        "a person walking on the sidewalk",
        "a car on the road",
    ];
    let epochs_before = engine_epochs(&engine);
    let ingest_done = AtomicBool::new(false);
    let post_ingest_submissions = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        // One ingest thread appending two batches mid-flight.
        {
            let engine = Arc::clone(&engine);
            let ingest_done = &ingest_done;
            scope.spawn(move || {
                for (round, seed) in [31u64, 37].into_iter().enumerate() {
                    let batch = collection(120, seed, 1000 * (round as u32 + 1));
                    engine.add_videos(&batch).expect("append");
                }
                ingest_done.store(true, Ordering::SeqCst);
            });
        }
        // 16 query threads hammering the service throughout.
        for worker in 0..16 {
            let service = &service;
            let engine = &engine;
            let epochs_before = &epochs_before;
            let ingest_done = &ingest_done;
            let post_ingest_submissions = &post_ingest_submissions;
            let text = queries[worker % queries.len()];
            scope.spawn(move || {
                // Keep hammering until the ingest has committed AND at least
                // a couple of post-ingest rounds ran, so invalidation is
                // always exercised regardless of relative thread speed.
                let mut rounds_after_ingest = 0;
                while rounds_after_ingest < 2 {
                    if ingest_done.load(Ordering::SeqCst) {
                        rounds_after_ingest += 1;
                    }
                    // Reading the epoch BEFORE submitting makes the freshness
                    // assertion sound: if the ingest had already committed by
                    // then, a stale pre-ingest answer must be impossible.
                    let ingest_was_done = ingest_done.load(Ordering::SeqCst);
                    let epochs_seen = engine_epochs(engine);
                    let served = service.submit(QuerySpec::new(text)).expect("submit");
                    assert!(!served.result.frames.is_empty());
                    for pair in served.result.frames.windows(2) {
                        assert!(pair[0].score >= pair[1].score);
                    }
                    if ingest_was_done {
                        post_ingest_submissions.fetch_add(1, Ordering::Relaxed);
                        // No stale hit across the epoch bump: whatever this
                        // submission was answered from (engine pass or cache
                        // entry) was computed at a post-ingest epoch, which
                        // means pre-ingest cache entries were NOT served.
                        if served.cache_hit {
                            assert!(
                                any_epoch_advanced(epochs_before, &epochs_seen),
                                "cache hit served although no shard's epoch ever moved?"
                            );
                        }
                    }
                }
            });
        }
    });

    assert!(
        any_epoch_advanced(&epochs_before, &engine_epochs(&engine)),
        "ingest must bump the ingesting shard's epoch"
    );
    assert!(
        post_ingest_submissions.load(Ordering::Relaxed) > 0,
        "some submissions must land after the ingest to exercise invalidation"
    );
    let stats = service.stats();
    assert!(stats.submitted >= 16 * 2);
    assert_eq!(stats.rejected, 0);
    // The epoch bumps evicted at least the entries cached before the ingest
    // and re-requested after it.
    assert!(
        stats.cache_stale_evictions > 0,
        "expected stale evictions across the ingest: {stats:?}"
    );
    // With 4 distinct texts hammered by 16 threads, the cache must have
    // soaked up repeat traffic between epoch bumps.
    assert!(stats.cache_hits > 0, "{stats:?}");

    // Deterministic tail check: with the collection now quiescent, the first
    // submission of a fresh text computes, the second hits, and both see the
    // appended videos' footage searchable.
    let fresh = QuerySpec::new("a red car side by side with another car");
    let computed = service.submit(fresh.clone()).expect("submit");
    assert!(!computed.cache_hit);
    let cached = service.submit(fresh).expect("submit");
    assert!(cached.cache_hit);
    assert_eq!(cached.result.frames, computed.result.frames);
}

#[test]
fn overload_surfaces_typed_rejection_without_wedging_the_service() {
    let engine =
        Arc::new(Lovo::build(&collection(120, 5, 0), LovoConfig::default()).expect("build engine"));
    // One worker, one-query batches (`max_batch = 1` disables the coalescing
    // window), depth-2 queue: the throttle is per-query engine latency
    // (milliseconds) against a 16-thread burst arriving within microseconds,
    // so at most in-flight + 2 queued submissions can be served promptly and
    // the rest must be refused at the door.
    let service = QueryService::start(
        Arc::clone(&engine),
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(2)
            .with_max_batch(1)
            .with_cache_capacity(0)
            .with_maintenance_interval(None),
    )
    .expect("start service");

    let rejected = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for client in 0..16 {
            let service = &service;
            let rejected = &rejected;
            let completed = &completed;
            scope.spawn(move || {
                match service.submit(QuerySpec::new(format!("a car number {client}"))) {
                    Ok(served) => {
                        assert!(served.result.timings.queue_seconds >= 0.0);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ServeError::Rejected { queue_depth }) => {
                        assert_eq!(queue_depth, 2);
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
            });
        }
    });
    // 16 near-simultaneous one-shot clients against a depth-2 queue and a
    // serve-one-at-a-time worker: some must be refused, the rest served.
    assert!(
        rejected.load(Ordering::Relaxed) >= 1,
        "no rejection under overload"
    );
    assert!(completed.load(Ordering::Relaxed) >= 1, "nothing completed");
    assert_eq!(
        rejected.load(Ordering::Relaxed) + completed.load(Ordering::Relaxed),
        16
    );
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected.load(Ordering::Relaxed) as u64);

    // The service is not wedged: a follow-up submission completes normally.
    let served = service
        .submit(QuerySpec::new("a bus"))
        .expect("post-overload submit");
    assert!(served.result.timings.queue_seconds >= 0.0);
}

#[test]
fn drop_under_load_completes_or_types_every_submission() {
    let engine = Arc::new(
        Lovo::build(&collection(120, 13, 0), LovoConfig::default()).expect("build engine"),
    );
    // Shared ownership so the teardown races the load for real: the main
    // thread relinquishes its handle while clients are mid-submit, and the
    // service Drop (stop admitting → drain the queue → join workers and the
    // maintenance thread) runs on whichever thread lets go of the last
    // reference — with the ingest thread still appending against the same
    // engine throughout.
    let service = Arc::new(
        QueryService::start(
            Arc::clone(&engine),
            // One slow worker and one-query batches so the queue is
            // genuinely non-empty for most of the run.
            ServeConfig::default()
                .with_workers(1)
                .with_queue_depth(64)
                .with_max_batch(1)
                .with_cache_capacity(0),
        )
        .expect("start service"),
    );

    let completed = Arc::new(AtomicUsize::new(0));
    let typed_errors = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();

    // Racing ingest through an engine handle independent of the service.
    {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            engine
                .add_videos(&collection(90, 41, 5000))
                .expect("append during teardown");
        }));
    }

    const CLIENTS: usize = 12;
    const ROUNDS: usize = 3;
    for client in 0..CLIENTS {
        let service = Arc::clone(&service);
        let completed = Arc::clone(&completed);
        let typed_errors = Arc::clone(&typed_errors);
        handles.push(std::thread::spawn(move || {
            for round in 0..ROUNDS {
                let spec = QuerySpec::new(format!("a car number {client} round {round}"));
                match service.submit(spec) {
                    Ok(served) => {
                        assert!(!served.result.frames.is_empty());
                        assert!(served.result.timings.queue_seconds >= 0.0);
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    // The only acceptable refusals are the typed ones.
                    Err(ServeError::Rejected { .. }) | Err(ServeError::ShuttingDown) => {
                        typed_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("submission neither served nor typed-refused: {other}"),
                }
            }
        }));
    }

    // Let go of the main handle while the clients above are still queued.
    drop(service);

    // Every thread joins — the drain guarantee means nothing can hang on an
    // unanswered reply channel, and no worker panics (a panicking pass
    // would surface as `WorkerLost`, which the match above rejects).
    for handle in handles {
        handle.join().expect("join under-teardown thread");
    }
    let completed = completed.load(Ordering::Relaxed);
    let typed_errors = typed_errors.load(Ordering::Relaxed);
    assert_eq!(completed + typed_errors, CLIENTS * ROUNDS);
    assert!(completed > 0, "nothing completed under load");

    // The racing ingest landed: the engine is still consistent afterwards.
    assert!(!engine
        .query("a car on the road")
        .expect("post-teardown query")
        .frames
        .is_empty());
}

#[test]
fn served_wait_time_separates_queue_from_engine_stages() {
    let engine =
        Arc::new(Lovo::build(&collection(120, 9, 0), LovoConfig::default()).expect("build engine"));
    // A 25 ms batch window with one worker guarantees a measurable serve-side
    // wait for submissions that arrive while the window is open.
    let service = QueryService::start(
        Arc::clone(&engine),
        ServeConfig::default()
            .with_workers(1)
            .with_batch_window(Duration::from_millis(25))
            .with_cache_capacity(0)
            .with_maintenance_interval(None),
    )
    .expect("start service");

    let direct = engine
        .query("a bus driving on the road")
        .expect("direct query");
    assert_eq!(direct.timings.queue_seconds, 0.0);
    assert!(direct.breakdown().starts_with("wait 0.00ms"));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..3 {
            let service = &service;
            handles.push(scope.spawn(move || {
                service
                    .submit(QuerySpec::new("a bus driving on the road"))
                    .expect("submit")
            }));
        }
        let mut max_wait = 0.0f64;
        for handle in handles {
            let served = handle.join().expect("join client");
            let timings = served.result.timings;
            assert!(timings.queue_seconds >= 0.0);
            assert!(timings.total_seconds() >= timings.queue_seconds);
            max_wait = max_wait.max(timings.queue_seconds);
        }
        // At least one submission waited out (part of) the batch window.
        assert!(
            max_wait >= 0.005,
            "expected a visible batch-window wait, got {max_wait}s"
        );
    });
}

#[test]
fn sharded_epochs_and_caches_move_per_shard() {
    // The per-shard generalization of the freshness invariant above: with
    // two shards behind a router, ingesting into one shard moves exactly
    // that shard's entry in `ShardRouter::epochs` and invalidates exactly
    // that shard's coarse cache — the other shard keeps answering from its
    // cache across the ingest.
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(4)
            .with_frames_per_video(60)
            .with_seed(21),
    );
    let config = LovoConfig::default();
    let placement = Arc::new(HashPlacement::new(2));
    let engines: Vec<Arc<Lovo>> = partition_videos(&videos, placement.as_ref())
        .iter()
        .map(|part| Arc::new(Lovo::build(part, config).expect("build shard engine")))
        .collect();
    assert_eq!(engines.len(), 2, "two shard engines expected");
    let shards: Vec<Arc<dyn lovo::serve::EngineShard>> = engines
        .iter()
        .map(|engine| {
            Arc::new(LocalShard::new(Arc::clone(engine))) as Arc<dyn lovo::serve::EngineShard>
        })
        .collect();
    // The merged-result cache is disabled here so the *per-shard* coarse
    // caches are observable; the result layer has its own test below.
    let router = ShardRouter::new(
        shards,
        Arc::clone(&placement) as _,
        config,
        ShardConfig::default().with_result_cache_capacity(0),
    )
    .expect("build router");

    let spec = QuerySpec::new("a car on the road");
    let first = router.query_spec(&spec).expect("first query");
    assert_eq!(first.coarse_cache_hits, 0);
    let second = router.query_spec(&spec).expect("second query");
    assert_eq!(
        second.coarse_cache_hits, 2,
        "both shards should answer the repeat from cache"
    );
    assert_eq!(second.result.frames, first.result.frames);

    // Ingest new footage into shard 0 only — respecting the placement, so
    // the router's ownership map stays truthful.
    let epochs_before = router.epochs();
    assert_eq!(epochs_before.len(), 2);
    let batch = {
        let mut fresh = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_num_videos(8)
                .with_frames_per_video(45)
                .with_seed(77),
        );
        for video in &mut fresh.videos {
            video.id += 1000;
        }
        let part = partition_videos(&fresh, placement.as_ref()).swap_remove(0);
        assert!(
            !part.videos.is_empty(),
            "batch must place videos on shard 0"
        );
        part
    };
    engines[0].add_videos(&batch).expect("ingest into shard 0");

    let epochs_after = router.epochs();
    assert!(
        epochs_after[0] > epochs_before[0],
        "ingesting shard's epoch must advance: {epochs_before:?} -> {epochs_after:?}"
    );
    assert_eq!(
        epochs_after[1], epochs_before[1],
        "idle shard's epoch must not move: {epochs_before:?} -> {epochs_after:?}"
    );

    // Same spec again: shard 0's cache entry is stale (epoch moved) and is
    // recomputed; shard 1 still hits.
    let stats_before = router.stats();
    let third = router.query_spec(&spec).expect("post-ingest query");
    let stats_after = router.stats();
    assert_eq!(
        third.coarse_cache_hits, 1,
        "only the idle shard should answer from cache after the ingest"
    );
    assert_eq!(stats_after.cache_hits - stats_before.cache_hits, 1);
    assert_eq!(
        stats_after.coarse_requests - stats_before.coarse_requests,
        1
    );
    assert!(third.outages.is_empty());
}

#[test]
fn sharded_result_cache_serves_repeats_until_a_shard_ingests() {
    // The router-level merged-result cache: a repeat plan over unchanged
    // shards is answered without any scatter, and an ingest into *either*
    // shard changes the epoch vector and forces a recompute.
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(4)
            .with_frames_per_video(60)
            .with_seed(33),
    );
    let config = LovoConfig::default();
    let placement = Arc::new(HashPlacement::new(2));
    let engines: Vec<Arc<Lovo>> = partition_videos(&videos, placement.as_ref())
        .iter()
        .map(|part| Arc::new(Lovo::build(part, config).expect("build shard engine")))
        .collect();
    let shards: Vec<Arc<dyn lovo::serve::EngineShard>> = engines
        .iter()
        .map(|engine| {
            Arc::new(LocalShard::new(Arc::clone(engine))) as Arc<dyn lovo::serve::EngineShard>
        })
        .collect();
    let router = ShardRouter::new(
        shards,
        Arc::clone(&placement) as _,
        config,
        ShardConfig::default(),
    )
    .expect("build router");

    let spec = QuerySpec::new("a bus driving on the road");
    let first = router.query_spec(&spec).expect("first query");
    assert!(!first.result_cache_hit);
    let second = router.query_spec(&spec).expect("repeat query");
    assert!(second.result_cache_hit, "repeat should skip the scatter");
    assert_eq!(second.result.frames, first.result.frames);
    assert_eq!(second.shards_probed, first.shards_probed);
    assert_eq!(router.stats().result_hits, 1);

    // Ingest into shard 0 (placement-respecting): the target epoch vector
    // changes, so the cached answer is stale and the next query recomputes.
    let batch = {
        let mut fresh = VideoCollection::generate(
            DatasetConfig::for_kind(DatasetKind::Bellevue)
                .with_num_videos(8)
                .with_frames_per_video(45)
                .with_seed(91),
        );
        for video in &mut fresh.videos {
            video.id += 2000;
        }
        partition_videos(&fresh, placement.as_ref()).swap_remove(0)
    };
    assert!(!batch.videos.is_empty());
    engines[0].add_videos(&batch).expect("ingest into shard 0");

    let third = router.query_spec(&spec).expect("post-ingest query");
    assert!(
        !third.result_cache_hit,
        "epoch vector moved — the cached result must not be served"
    );
    assert_eq!(router.stats().result_hits, 1);
    assert_eq!(router.stats().result_misses, 2);
}
