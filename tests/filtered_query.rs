//! End-to-end predicate pushdown: a time-window + object-class predicate
//! travels from the `QuerySpec` through the planner, the metadata join, the
//! segment fan-out and the index scans — and every returned frame satisfies
//! it. Also checks the batch path against the single-query path and the
//! video-subset scenario ("find X in camera 2").

use lovo_core::{Lovo, LovoConfig, QuerySpec};
use lovo_video::{DatasetConfig, DatasetKind, ObjectClass, QueryPredicate, VideoCollection};

fn multi_camera_collection() -> VideoCollection {
    VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(3)
            .with_frames_per_video(240)
            .with_seed(29),
    )
}

#[test]
fn time_window_and_class_predicate_through_query_batch() {
    let videos = multi_camera_collection();
    let lovo = Lovo::build(&videos, LovoConfig::default()).expect("build");

    // Frames run 0..240 at 30 fps => timestamps 0..8s. Constrain to the
    // middle of the footage and to buses only.
    let window = (2.0, 6.0);
    let predicate =
        QueryPredicate::time_range(window.0, window.1).and(QueryPredicate::class(ObjectClass::Bus));
    let specs = [
        QuerySpec::new("a bus driving on the road").with_predicate(predicate.clone()),
        QuerySpec::new("a red car driving in the center of the road"),
    ];
    let results = lovo.query_batch(&specs).expect("query batch");
    assert_eq!(results.len(), 2);

    let filtered = &results[0];
    assert!(
        !filtered.frames.is_empty(),
        "no frames for the filtered bus query"
    );
    for ranked in &filtered.frames {
        assert!(
            ranked.timestamp >= window.0 && ranked.timestamp <= window.1,
            "frame at {:.2}s escaped the {:?} window",
            ranked.timestamp,
            window
        );
        // The class pushdown admits only patches whose dominant object is a
        // bus, so every candidate frame must actually contain one.
        let frame = &videos.videos[ranked.video_id as usize].frames[ranked.frame_index as usize];
        assert!(
            frame
                .objects
                .iter()
                .any(|o| o.attributes.class == ObjectClass::Bus),
            "video {} frame {} has no bus",
            ranked.video_id,
            ranked.frame_index
        );
    }
    // The pushdown did real work: candidates were masked inside the scans.
    assert!(filtered.search_stats.filtered_out > 0);
    assert!(filtered.timings.prune_seconds > 0.0);

    // The unfiltered companion query is unconstrained and unaffected.
    assert!(!results[1].frames.is_empty());
    assert_eq!(results[1].search_stats.filtered_out, 0);

    // Batch results match the single-query path (same plan, same engine).
    let single = lovo.query_spec(&specs[0]).expect("single query");
    let keys = |r: &lovo_core::QueryResult| -> Vec<(u32, u32)> {
        r.frames
            .iter()
            .map(|f| (f.video_id, f.frame_index))
            .collect()
    };
    assert_eq!(keys(filtered), keys(&single));
}

#[test]
fn video_subset_predicate_prunes_other_cameras() {
    let videos = multi_camera_collection();
    let lovo =
        Lovo::build(&videos, LovoConfig::default().with_segment_capacity(1024)).expect("build");

    let spec = QuerySpec::new("a red car driving in the center of the road")
        .with_predicate(QueryPredicate::videos([2]));
    let result = lovo.query_spec(&spec).expect("query");
    assert!(!result.frames.is_empty());
    assert!(result.frames.iter().all(|f| f.video_id == 2));
    // Video-contiguous segments + zone maps: at least one segment of the
    // other two cameras was pruned without being probed.
    assert!(
        result.search_stats.segments_pruned > 0,
        "expected zone-map pruning, stats: {:?}",
        result.search_stats
    );
}
