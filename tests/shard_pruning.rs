//! Router pruning: a query whose video predicate maps onto one shard must
//! never touch the other shards at all — `shards_pruned` reports N-1, and a
//! counting wrapper proves the pruned shards received zero coarse requests
//! (zero rows read, not merely zero rows returned).

use lovo::core::{Lovo, LovoConfig, QuerySpec};
use lovo::serve::{
    partition_videos, CoarseRequest, CoarseResponse, EngineShard, HashPlacement, LocalShard,
    Placement, RerankRequest, RerankResponse, ShardConfig, ShardRouter,
};
use lovo::video::{DatasetConfig, DatasetKind, QueryPredicate, VideoCollection};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn corpus(seed: u64) -> VideoCollection {
    VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_num_videos(8)
            .with_frames_per_video(30)
            .with_seed(seed),
    )
}

/// Delegating shard that counts how many coarse/rerank requests reach it.
struct CountingShard {
    inner: LocalShard,
    coarse_calls: AtomicUsize,
    rerank_calls: AtomicUsize,
}

impl CountingShard {
    fn new(inner: LocalShard) -> Self {
        Self {
            inner,
            coarse_calls: AtomicUsize::new(0),
            rerank_calls: AtomicUsize::new(0),
        }
    }
}

impl EngineShard for CountingShard {
    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn video_range(&self) -> Option<(u32, u32)> {
        self.inner.video_range()
    }

    fn coarse(&self, request: &CoarseRequest) -> Result<CoarseResponse, String> {
        self.coarse_calls.fetch_add(1, Ordering::SeqCst);
        self.inner.coarse(request)
    }

    fn rerank(&self, request: &RerankRequest) -> Result<RerankResponse, String> {
        self.rerank_calls.fetch_add(1, Ordering::SeqCst);
        self.inner.rerank(request)
    }
}

/// Builds an N-shard router whose shards count the requests they receive.
/// Caching is disabled so every query's fan-out is visible in the counters.
fn counting_router(
    videos: &VideoCollection,
    shards: usize,
) -> (ShardRouter, Vec<Arc<CountingShard>>, HashPlacement) {
    let config = LovoConfig::ablation_without_anns();
    let placement = HashPlacement::new(shards);
    let counters: Vec<Arc<CountingShard>> = partition_videos(videos, &placement)
        .iter()
        .map(|part| {
            let engine = Lovo::build(part, config).expect("build shard engine");
            Arc::new(CountingShard::new(LocalShard::new(Arc::new(engine))))
        })
        .collect();
    let engines: Vec<Arc<dyn EngineShard>> = counters
        .iter()
        .map(|shard| Arc::clone(shard) as Arc<dyn EngineShard>)
        .collect();
    let router = ShardRouter::new(
        engines,
        Arc::new(HashPlacement::new(shards)),
        config,
        ShardConfig::default().with_cache_capacity(0),
    )
    .expect("build router");
    (router, counters, placement)
}

#[test]
fn one_shard_video_predicate_prunes_the_rest() {
    let videos = corpus(3);
    let (router, counters, placement) = counting_router(&videos, 4);

    // Pick a video and restrict the query to it: only its owning shard may
    // be contacted.
    let target_video = videos.videos[0].id;
    let owner = placement.shard_of(target_video);
    let sharded = router
        .query_spec(
            &QuerySpec::new("a car on the road")
                .with_predicate(QueryPredicate::videos([target_video])),
        )
        .expect("routed query");

    assert!(sharded.outages.is_empty());
    assert_eq!(sharded.shards_probed, 1);
    assert_eq!(sharded.shards_pruned, 3);
    // The merged SearchStats carry the same shard-level pruning counters the
    // segment-level zone maps report one layer down.
    assert_eq!(sharded.result.search_stats.shards_probed, 1);
    assert_eq!(sharded.result.search_stats.shards_pruned, 3);
    assert_eq!(router.stats().shards_pruned, 3);

    // Zero rows read on pruned shards: they never received a request.
    for (index, shard) in counters.iter().enumerate() {
        let expected = usize::from(index == owner);
        assert_eq!(
            shard.coarse_calls.load(Ordering::SeqCst),
            expected,
            "shard {index} coarse fan-out"
        );
        if index != owner {
            assert_eq!(shard.rerank_calls.load(Ordering::SeqCst), 0);
        }
    }
    // Every returned frame belongs to the requested video.
    for frame in &sharded.result.frames {
        assert_eq!(frame.video_id, target_video);
    }
}

#[test]
fn unfiltered_queries_probe_every_populated_shard() {
    let videos = corpus(7);
    let (router, counters, placement) = counting_router(&videos, 4);
    let populated: usize = (0..4)
        .filter(|&s| videos.videos.iter().any(|v| placement.shard_of(v.id) == s))
        .count();

    let sharded = router
        .query_spec(&QuerySpec::new("a bus driving on the road"))
        .expect("routed query");
    assert!(sharded.outages.is_empty());
    assert_eq!(sharded.shards_probed, populated);
    assert_eq!(sharded.shards_pruned, 4 - populated);
    let contacted = counters
        .iter()
        .filter(|shard| shard.coarse_calls.load(Ordering::SeqCst) > 0)
        .count();
    assert_eq!(contacted, populated);
}

#[test]
fn provably_empty_plans_touch_no_shard() {
    let videos = corpus(9);
    let (router, counters, _) = counting_router(&videos, 4);

    let sharded = router
        .query_spec(&QuerySpec::new("anything").with_predicate(QueryPredicate::videos([])))
        .expect("routed query");
    assert!(sharded.outages.is_empty());
    assert!(sharded.result.frames.is_empty());
    assert_eq!(sharded.shards_probed, 0);
    assert_eq!(sharded.shards_pruned, 4);
    for shard in &counters {
        assert_eq!(shard.coarse_calls.load(Ordering::SeqCst), 0);
        assert_eq!(shard.rerank_calls.load(Ordering::SeqCst), 0);
    }
}

#[test]
fn predicate_for_absent_videos_prunes_by_stored_range() {
    // The predicate names a video id that hashes onto some shard but is not
    // stored anywhere: placement alone would route the query, but the
    // shard's stored id range cannot contain it, so the range check prunes
    // the remaining shard too.
    let videos = corpus(13);
    let absent = videos.videos.iter().map(|v| v.id).max().unwrap() + 1_000;
    let (router, counters, _) = counting_router(&videos, 4);

    let sharded = router
        .query_spec(
            &QuerySpec::new("a car on the road").with_predicate(QueryPredicate::videos([absent])),
        )
        .expect("routed query");
    assert!(sharded.result.frames.is_empty());
    assert_eq!(sharded.shards_probed, 0);
    assert_eq!(sharded.shards_pruned, 4);
    for shard in &counters {
        assert_eq!(shard.coarse_calls.load(Ordering::SeqCst), 0);
    }
}
