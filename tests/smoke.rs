//! Fast workspace smoke test: one tiny Bellevue collection through the full
//! `Lovo::build` -> `Lovo::query` pipeline. This exercises every crate in the
//! dependency chain (video -> encoder -> index -> store -> core) in a few
//! seconds, so CI gets end-to-end coverage even when the heavy
//! `end_to_end.rs` suite is skipped locally.

use lovo_core::{Lovo, LovoConfig};
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};

#[test]
fn tiny_collection_builds_and_answers_a_query() {
    let videos = VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(90)
            .with_seed(5),
    );
    let lovo = Lovo::build(&videos, LovoConfig::default()).expect("build");
    assert!(lovo.indexed_patches() > 0);

    let result = lovo
        .query("a red car driving in the center of the road")
        .expect("query");
    assert!(!result.frames.is_empty(), "query returned no frames");
    assert!(result.frames.len() <= lovo.config().output_frames);
    assert!(result.fast_search_candidates > 0);
    for pair in result.frames.windows(2) {
        assert!(
            pair[0].score >= pair[1].score,
            "results not sorted by score"
        );
    }
    // Every returned frame must reference a real frame of the collection.
    for ranked in &result.frames {
        let video = &videos.videos[ranked.video_id as usize];
        assert!((ranked.frame_index as usize) < video.frames.len());
    }
}
