//! Workspace integration tests: exercise the full pipeline across crates
//! (video substrate -> encoders -> index -> store -> LOVO -> evaluation).

use lovo_baselines::{LovoSystem, ObjectQuerySystem, Vocal, Zelda};
use lovo_core::{Lovo, LovoConfig};
use lovo_eval::experiments::{evaluate_query, ACCURACY_TOP_K};
use lovo_eval::metrics::GroundTruthIndex;
use lovo_eval::queries_for;
use lovo_index::IndexKind;
use lovo_video::{DatasetConfig, DatasetKind, VideoCollection};

fn bellevue(frames: usize) -> VideoCollection {
    VideoCollection::generate(
        DatasetConfig::for_kind(DatasetKind::Bellevue)
            .with_frames_per_video(frames)
            .with_seed(77),
    )
}

/// Generates a collection of the given kind in which `query_id` has at least
/// a handful of ground-truth frames, retrying over seeds: downsized synthetic
/// collections do not always contain every rare target by chance.
fn collection_with_ground_truth(
    kind: DatasetKind,
    frames: usize,
    query_id: &str,
) -> (VideoCollection, lovo_video::query::ObjectQuery) {
    let query = queries_for(kind)
        .into_iter()
        .find(|q| q.id == query_id)
        .expect("query id exists");
    for seed in 0..16u64 {
        let videos = VideoCollection::generate(
            DatasetConfig::for_kind(kind)
                .with_frames_per_video(frames)
                .with_seed(1000 + seed),
        );
        let gt = GroundTruthIndex::build(&videos, &query);
        if gt.positive_frames() >= 5 {
            return (videos, query);
        }
    }
    panic!("no seed produced ground truth for {query_id} on {kind:?}");
}

#[test]
fn lovo_beats_predefined_class_index_on_complex_queries() {
    let (videos, complex) = collection_with_ground_truth(DatasetKind::Bellevue, 700, "Q2.2");
    let complex = &complex;

    let mut vocal = Vocal::new();
    vocal.preprocess(&videos);
    let mut lovo = LovoSystem::default();
    lovo.preprocess(&videos);

    let (vocal_ap, vocal_resp) = evaluate_query(&vocal, &videos, complex, ACCURACY_TOP_K);
    let (lovo_ap, lovo_resp) = evaluate_query(&lovo, &videos, complex, ACCURACY_TOP_K);

    assert!(
        !vocal_resp.supported,
        "VOCAL cannot express relation queries"
    );
    assert!(lovo_resp.supported);
    assert!(
        lovo_ap > vocal_ap,
        "LOVO AveP {lovo_ap} should beat VOCAL {vocal_ap} on the complex query"
    );
    assert!(
        lovo_ap > 0.1,
        "LOVO should retrieve at least some correct frames"
    );
}

#[test]
fn rerank_improves_complex_query_accuracy() {
    let (videos, complex) = collection_with_ground_truth(DatasetKind::Bellevue, 600, "Q2.2");
    let complex = &complex;

    let mut full = LovoSystem::new(LovoConfig::default());
    full.preprocess(&videos);
    let mut no_rerank = LovoSystem::new(LovoConfig::ablation_without_rerank());
    no_rerank.preprocess(&videos);

    let (full_ap, _) = evaluate_query(&full, &videos, complex, ACCURACY_TOP_K);
    let (ablated_ap, _) = evaluate_query(&no_rerank, &videos, complex, ACCURACY_TOP_K);
    assert!(
        full_ap >= ablated_ap,
        "rerank must not hurt complex-query AveP (full {full_ap} vs ablated {ablated_ap})"
    );
}

#[test]
fn all_index_families_answer_queries_consistently() {
    let videos = bellevue(300);
    let query = &queries_for(DatasetKind::Bellevue)[0];
    let ground_truth = GroundTruthIndex::build(&videos, query);
    assert!(!ground_truth.is_empty());

    for kind in [IndexKind::BruteForce, IndexKind::IvfPq, IndexKind::Hnsw] {
        let lovo = Lovo::build(&videos, LovoConfig::default().with_index_kind(kind))
            .unwrap_or_else(|e| panic!("build with {kind:?} failed: {e}"));
        let result = lovo.query(&query.text).unwrap();
        assert!(
            !result.frames.is_empty(),
            "{kind:?} produced no results for {}",
            query.id
        );
    }
}

#[test]
fn zelda_baseline_and_lovo_agree_on_easy_queries() {
    // On a simple, large-object query both the frame-level baseline and LOVO
    // should retrieve relevant frames; this guards the shared attribute space
    // against regressions that would silently break one of the two paths.
    let (videos, simple) = collection_with_ground_truth(DatasetKind::Beach, 500, "Q4.1");
    let simple = &simple;

    let mut zelda = Zelda::new();
    zelda.preprocess(&videos);
    let mut lovo = LovoSystem::default();
    lovo.preprocess(&videos);

    let (zelda_ap, _) = evaluate_query(&zelda, &videos, simple, ACCURACY_TOP_K);
    let (lovo_ap, _) = evaluate_query(&lovo, &videos, simple, ACCURACY_TOP_K);
    assert!(
        zelda_ap > 0.05,
        "ZELDA should find green buses (got {zelda_ap})"
    );
    assert!(
        lovo_ap > 0.05,
        "LOVO should find green buses (got {lovo_ap})"
    );
}

#[test]
fn storage_footprint_reports_are_consistent() {
    let videos = bellevue(300);
    let lovo = Lovo::build(&videos, LovoConfig::default()).unwrap();
    let stats = lovo
        .database()
        .collection_stats(lovo_core::summary::PATCH_COLLECTION)
        .unwrap();
    assert_eq!(stats.entities, lovo.indexed_patches());
    assert!(
        stats.index_bytes < stats.raw_bytes,
        "PQ index must compress the raw embeddings"
    );
    assert!(lovo.storage_bytes() >= stats.index_bytes);
}
